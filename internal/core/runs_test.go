package core

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// testComb is a two-part recipe over a {2,3}-cardinality menu: block
// length 6, each task twice in 2-bins and once in 3-bins.
func testComb() *RunComb {
	return &RunComb{
		Parts:    []RunPart{{Cardinality: 2, Count: 2}, {Cardinality: 3, Count: 1}},
		BlockLen: 6,
	}
}

func testMenu() BinSet {
	return MustBinSet([]TaskBin{
		{Cardinality: 2, Confidence: 0.85, Cost: 0.18},
		{Cardinality: 3, Confidence: 0.80, Cost: 0.24},
	})
}

// testRuns builds a two-run plan: 2 full blocks over tasks 0..11 plus a
// padded application over the 4-task remainder 12..15.
func testRuns() *PlanRuns {
	arena := make([]int, 16)
	for i := range arena {
		arena[i] = i
	}
	return &PlanRuns{
		Arena: arena,
		Runs: []BlockRun{
			{Comb: testComb(), Blocks: 2, Off: 0, Len: 12},
			{Comb: testComb(), Blocks: 0, Off: 12, Len: 4},
		},
	}
}

func TestPlanRunsArithmeticMatchesExpansion(t *testing.T) {
	pr := testRuns()
	plan := NewRunPlan(pr)
	legacy := &Plan{Uses: pr.Expand()}

	if got, want := plan.NumUses(), legacy.NumUses(); got != want {
		t.Fatalf("NumUses %d != expanded %d", got, want)
	}
	if got, want := plan.NumAssignments(), legacy.NumAssignments(); got != want {
		t.Fatalf("NumAssignments %d != expanded %d", got, want)
	}
	if !reflect.DeepEqual(plan.Counts(), legacy.Counts()) {
		t.Fatalf("Counts %v != expanded %v", plan.Counts(), legacy.Counts())
	}
	menu := testMenu()
	if got, want := plan.MustCost(menu), legacy.MustCost(menu); got != want {
		t.Fatalf("Cost %v != expanded %v", got, want)
	}
	gotSum, err := plan.Summarize(menu)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := legacy.Summarize(menu)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSum, wantSum) {
		t.Fatalf("Summary %+v != expanded %+v", gotSum, wantSum)
	}
}

func TestPlanRunsCostUnknownCardinality(t *testing.T) {
	pr := testRuns()
	badMenu := MustBinSet([]TaskBin{{Cardinality: 2, Confidence: 0.85, Cost: 0.18}})
	if _, err := NewRunPlan(pr).Cost(badMenu); err == nil {
		t.Fatal("cost against a menu missing cardinality 3 must fail")
	}
}

func TestPlanRunsJSONMatchesLegacy(t *testing.T) {
	pr := testRuns()
	runJSON, err := json.Marshal(NewRunPlan(pr))
	if err != nil {
		t.Fatal(err)
	}
	legacyJSON, err := json.Marshal(&Plan{Uses: pr.Expand()})
	if err != nil {
		t.Fatal(err)
	}
	if string(runJSON) != string(legacyJSON) {
		t.Fatalf("run-backed JSON differs from legacy:\n%s\n%s", runJSON, legacyJSON)
	}
	// Empty plans must keep the historical "uses":null form.
	emptyRun, err := json.Marshal(NewRunPlan(&PlanRuns{}))
	if err != nil {
		t.Fatal(err)
	}
	emptyLegacy, err := json.Marshal(&Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if string(emptyRun) != string(emptyLegacy) {
		t.Fatalf("empty run-backed JSON %s != legacy %s", emptyRun, emptyLegacy)
	}
	// And decode back into a servable legacy plan.
	var back Plan
	if err := json.Unmarshal(runJSON, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumUses() != NewRunPlan(pr).NumUses() {
		t.Fatalf("round-tripped plan has %d uses, want %d", back.NumUses(), NewRunPlan(pr).NumUses())
	}
}

func TestMergePlanRunsIndependence(t *testing.T) {
	a, b := testRuns(), testRuns()
	merged := MergePlanRuns(a, nil, b)
	if got, want := len(merged.Arena), len(a.Arena)+len(b.Arena); got != want {
		t.Fatalf("merged arena %d, want %d", got, want)
	}
	wantUses := append(a.Expand(), b.Expand()...)
	gotUses := merged.Expand()
	if !reflect.DeepEqual(gotUses, wantUses) {
		t.Fatal("merged expansion is not the concatenation of the parts")
	}
	// Mutating the merge must not touch the inputs.
	merged.OffsetTasks(100)
	if a.Arena[0] != 0 || b.Arena[0] != 0 {
		t.Fatal("OffsetTasks on the merge leaked into an input arena")
	}
	for _, u := range merged.Expand() {
		for _, task := range u.Tasks {
			if task < 100 {
				t.Fatalf("task %d missed the offset", task)
			}
		}
	}
}

func TestOffsetTasksKeepsMaterializationCoherent(t *testing.T) {
	pr := testRuns()
	before := NewRunPlan(pr)
	mat := before.Materialized() // materialize BEFORE offsetting
	pr.OffsetTasks(10)
	for i, u := range mat {
		for j, task := range u.Tasks {
			if task != pr.Expand()[i].Tasks[j] {
				t.Fatalf("use %d task %d: cached materialization %d != post-offset expansion %d",
					i, j, task, pr.Expand()[i].Tasks[j])
			}
			if task < 10 {
				t.Fatalf("use %d: cached materialization missed the offset (task %d)", i, task)
			}
		}
	}
}

func TestRunPlanMergeDemotesToLegacy(t *testing.T) {
	run := NewRunPlan(testRuns())
	legacy := &Plan{Uses: []BinUse{{Cardinality: 2, Tasks: []int{100, 101}}}}
	wantUses := run.NumUses() + 1

	merged := MergePlans(run, legacy)
	if merged.Runs() != nil {
		t.Fatal("mixed merge should demote to the legacy form")
	}
	if merged.NumUses() != wantUses {
		t.Fatalf("mixed merge has %d uses, want %d", merged.NumUses(), wantUses)
	}

	runOnly := MergePlans(NewRunPlan(testRuns()), &Plan{}, NewRunPlan(testRuns()))
	if runOnly.Runs() == nil {
		t.Fatal("run-only merge (empty legacy plans skipped) should stay run-backed")
	}
	if got, want := runOnly.NumUses(), 2*run.NumUses(); got != want {
		t.Fatalf("run-only merge has %d uses, want %d", got, want)
	}

	// Merge (the in-place combiner) demotes a run-backed receiver.
	p := NewRunPlan(testRuns())
	p.Merge(legacy)
	if p.Runs() != nil || p.NumUses() != wantUses {
		t.Fatalf("in-place merge: runs=%v uses=%d, want legacy with %d", p.Runs(), p.NumUses(), wantUses)
	}
}

func TestPlanRunsCloneIsDeep(t *testing.T) {
	pr := testRuns()
	cl := pr.Clone()
	cl.OffsetTasks(50)
	if pr.Arena[0] != 0 {
		t.Fatal("clone shares the arena with its source")
	}
	if !reflect.DeepEqual(pr.Clone().Expand(), pr.Expand()) {
		t.Fatal("clone expands differently from its source")
	}
}

func TestMaterializeConcurrent(t *testing.T) {
	pr := testRuns()
	plan := NewRunPlan(pr)
	var wg sync.WaitGroup
	views := make([][]BinUse, 16)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = plan.Materialized()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(views); i++ {
		if &views[i][0] != &views[0][0] {
			t.Fatal("concurrent Materialized calls produced distinct expansions")
		}
	}
}

// TestMalformedRunsRejected: hand-built run plans with impossible shapes
// must come back as errors from the designated rejection paths (Validate
// via EachUse, and Cost), never as panics deep in the expansion.
func TestMalformedRunsRejected(t *testing.T) {
	menu := testMenu()
	in := MustHomogeneous(menu, 16, 0.95)
	bad := []*PlanRuns{
		{Runs: []BlockRun{{Comb: testComb(), Blocks: 0, Off: 0, Len: 0}}},                                                                                 // empty padded run
		{Runs: []BlockRun{{Comb: nil, Blocks: 1, Off: 0, Len: 6}}},                                                                                        // no comb
		{Arena: make([]int, 4), Runs: []BlockRun{{Comb: testComb(), Blocks: 1, Off: 0, Len: 6}}},                                                          // window past arena
		{Arena: make([]int, 12), Runs: []BlockRun{{Comb: testComb(), Blocks: 2, Off: 0, Len: 6}}},                                                         // len != blocks·L
		{Arena: make([]int, 8), Runs: []BlockRun{{Comb: testComb(), Blocks: 0, Off: 0, Len: 8}}},                                                          // padded ≥ block
		{Arena: make([]int, 6), Runs: []BlockRun{{Comb: &RunComb{Parts: []RunPart{{Cardinality: 4, Count: 1}}, BlockLen: 6}, Blocks: 1, Off: 0, Len: 6}}}, // card ∤ L
	}
	for i, pr := range bad {
		if err := NewRunPlan(pr).Validate(in); err == nil {
			t.Errorf("malformed plan %d passed Validate", i)
		}
		if _, err := NewRunPlan(pr).Cost(menu); err == nil {
			t.Errorf("malformed plan %d passed Cost", i)
		}
	}
}

func TestRunBackedValidateAndMass(t *testing.T) {
	pr := testRuns()
	menu := testMenu()
	in := MustHomogeneous(menu, 16, 0.95)
	plan := NewRunPlan(pr)
	legacy := &Plan{Uses: pr.Expand()}
	gotMass, err := plan.TransformedMass(16, menu)
	if err != nil {
		t.Fatal(err)
	}
	wantMass, err := legacy.TransformedMass(16, menu)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMass, wantMass) {
		t.Fatal("run-backed TransformedMass differs from expanded")
	}
	if err := plan.Validate(in); err != nil {
		// The hand-built test runs may or may not meet the threshold; the
		// check that matters is agreement with the legacy path.
		if lerr := legacy.Validate(in); lerr == nil {
			t.Fatalf("run-backed Validate failed where legacy passed: %v", err)
		}
	} else if lerr := legacy.Validate(in); lerr != nil {
		t.Fatalf("legacy Validate failed where run-backed passed: %v", lerr)
	}
}
