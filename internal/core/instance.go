package core

import (
	"encoding/json"
	"fmt"
)

// Instance is one SLADE problem instance: a bin menu plus a reliability
// threshold per atomic task. Tasks are identified by their index 0..N()-1.
type Instance struct {
	bins       BinSet
	thresholds []float64
}

// NewHomogeneous builds an instance of n atomic tasks sharing the threshold t.
func NewHomogeneous(bins BinSet, n int, t float64) (*Instance, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative task count %d", n)
	}
	th := make([]float64, n)
	for i := range th {
		th[i] = t
	}
	return NewHeterogeneous(bins, th)
}

// NewHeterogeneous builds an instance with one threshold per atomic task.
// The thresholds slice is copied.
func NewHeterogeneous(bins BinSet, thresholds []float64) (*Instance, error) {
	if err := bins.Validate(); err != nil {
		return nil, err
	}
	if bins.Len() == 0 && len(thresholds) > 0 {
		return nil, fmt.Errorf("core: empty bin menu for %d tasks", len(thresholds))
	}
	th := make([]float64, len(thresholds))
	copy(th, thresholds)
	for i, t := range th {
		if !(t >= 0 && t < 1) {
			return nil, fmt.Errorf("core: threshold t[%d]=%v outside [0,1)", i, t)
		}
	}
	return &Instance{bins: bins, thresholds: th}, nil
}

// MustHomogeneous is NewHomogeneous that panics on error.
func MustHomogeneous(bins BinSet, n int, t float64) *Instance {
	in, err := NewHomogeneous(bins, n, t)
	if err != nil {
		panic(err)
	}
	return in
}

// MustHeterogeneous is NewHeterogeneous that panics on error.
func MustHeterogeneous(bins BinSet, thresholds []float64) *Instance {
	in, err := NewHeterogeneous(bins, thresholds)
	if err != nil {
		panic(err)
	}
	return in
}

// N returns the number of atomic tasks n = |T|.
func (in *Instance) N() int { return len(in.thresholds) }

// Bins returns the bin menu B.
func (in *Instance) Bins() BinSet { return in.bins }

// Threshold returns the reliability threshold t_i of task i.
func (in *Instance) Threshold(i int) float64 { return in.thresholds[i] }

// Thresholds returns a copy of all task thresholds.
func (in *Instance) Thresholds() []float64 {
	out := make([]float64, len(in.thresholds))
	copy(out, in.thresholds)
	return out
}

// Theta returns the transformed demand θ_i = -ln(1 - t_i) of task i.
func (in *Instance) Theta(i int) float64 { return Theta(in.thresholds[i]) }

// Homogeneous reports whether all task thresholds are equal (the
// homogeneous SLADE variant of Section 5).
func (in *Instance) Homogeneous() bool {
	for i := 1; i < len(in.thresholds); i++ {
		if in.thresholds[i] != in.thresholds[0] {
			return false
		}
	}
	return true
}

// MinThreshold returns the smallest task threshold, or 0 for an empty
// instance.
func (in *Instance) MinThreshold() float64 {
	if len(in.thresholds) == 0 {
		return 0
	}
	t := in.thresholds[0]
	for _, v := range in.thresholds[1:] {
		if v < t {
			t = v
		}
	}
	return t
}

// MaxThreshold returns the largest task threshold, or 0 for an empty
// instance.
func (in *Instance) MaxThreshold() float64 {
	t := 0.0
	for _, v := range in.thresholds {
		if v > t {
			t = v
		}
	}
	return t
}

// Relaxed reports whether the instance satisfies the polynomial-time relaxed
// variant of Section 4.2: every bin's confidence meets the largest task
// threshold, so a single assignment to any bin suffices for any task.
func (in *Instance) Relaxed() bool {
	return in.bins.MinConfidence() >= in.MaxThreshold()
}

// instanceJSON is the wire form of an Instance.
type instanceJSON struct {
	Bins       []TaskBin `json:"bins"`
	Thresholds []float64 `json:"thresholds"`
}

// MarshalJSON encodes the instance as {"bins": [...], "thresholds": [...]}.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{Bins: in.bins.Bins(), Thresholds: in.Thresholds()})
}

// UnmarshalJSON decodes and validates the wire form.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	bs, err := NewBinSet(w.Bins)
	if err != nil {
		return err
	}
	dec, err := NewHeterogeneous(bs, w.Thresholds)
	if err != nil {
		return err
	}
	*in = *dec
	return nil
}
