package core

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzInstanceJSON fuzzes the Instance decoder: arbitrary bytes must either
// fail to decode or produce an instance that re-validates and round-trips.
func FuzzInstanceJSON(f *testing.F) {
	seed, _ := json.Marshal(MustHeterogeneous(table1(), []float64{0.5, 0.9}))
	f.Add(seed)
	f.Add([]byte(`{"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1}],"thresholds":[0.5]}`))
	f.Add([]byte(`{"bins":[],"thresholds":[]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return // rejected input is fine
		}
		// Accepted input must satisfy every invariant.
		if err := in.Bins().Validate(); err != nil {
			t.Fatalf("decoded invalid bins: %v", err)
		}
		for i := 0; i < in.N(); i++ {
			tt := in.Threshold(i)
			if !(tt >= 0 && tt < 1) {
				t.Fatalf("decoded threshold %v out of range", tt)
			}
			if th := in.Theta(i); math.IsNaN(th) || th < 0 {
				t.Fatalf("theta(%v) = %v", tt, th)
			}
		}
		round, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(round, &back); err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed n: %d → %d", in.N(), back.N())
		}
	})
}

// FuzzThetaTransform fuzzes the reliability transform pair: for any t in
// [0, 1), Theta is non-negative and ThresholdFromTheta inverts it.
func FuzzThetaTransform(f *testing.F) {
	f.Add(0.0)
	f.Add(0.5)
	f.Add(0.95)
	f.Add(0.999999)
	f.Fuzz(func(t *testing.T, raw float64) {
		if math.IsNaN(raw) || raw < 0 || raw >= 1 {
			return
		}
		theta := Theta(raw)
		if theta < 0 || math.IsNaN(theta) {
			t.Fatalf("Theta(%v) = %v", raw, theta)
		}
		back := ThresholdFromTheta(theta)
		if math.Abs(back-raw) > 1e-9 {
			t.Fatalf("round trip %v → %v → %v", raw, theta, back)
		}
	})
}
