package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// RelTol is the absolute tolerance used when checking reliability
// constraints. Transformed demands are sums of logarithms, so exact equality
// is not attainable in floating point; a plan is feasible when every task's
// transformed mass is within RelTol of its demand.
const RelTol = 1e-9

// BinUse is one use of a task bin: a concrete batch of distinct atomic tasks
// handed to one crowd worker.
type BinUse struct {
	// Cardinality selects which bin of the menu is used. The number of
	// assigned tasks may be smaller than the cardinality (a partially
	// filled bin still costs the full c_l).
	Cardinality int `json:"cardinality"`
	// Tasks lists the indices of the atomic tasks placed in this bin.
	Tasks []int `json:"tasks"`
}

// Plan is a decomposition plan DP_T: a multiset of bin uses with concrete
// task placements. A plan is backed either by an explicit use list (Uses,
// the legacy form every hand-built plan and decoded JSON uses) or by a
// compact block-run form (see PlanRuns) the hot-path solvers emit; in the
// run-backed case Uses stays nil and per-use views are produced lazily by
// Materialized. All read methods work identically on both forms.
type Plan struct {
	Uses []BinUse `json:"uses"`

	// runs is the compact backing of a solver-emitted plan; nil for
	// legacy plans.
	runs *PlanRuns
}

// NewRunPlan wraps a compact run-backed plan. The PlanRuns is owned by
// the returned plan and must not be mutated by the caller afterwards.
func NewRunPlan(pr *PlanRuns) *Plan { return &Plan{runs: pr} }

// Runs returns the plan's compact run backing, or nil for a legacy plan.
func (p *Plan) Runs() *PlanRuns { return p.runs }

// Materialized returns the plan's bin uses: the Uses field for a legacy
// plan, or the cached lazy expansion of the run form. The returned slice
// is shared and read-only (run-backed task lists alias the plan's arena).
// Safe for concurrent use.
func (p *Plan) Materialized() []BinUse {
	if p.runs != nil {
		return p.runs.Materialize()
	}
	return p.Uses
}

// EachUse streams the plan's bin uses in order without materializing a
// run-backed plan: the tasks slice is only valid for the duration of the
// callback and must not be retained or mutated. Iteration stops at the
// first non-nil error, which is returned.
func (p *Plan) EachUse(fn func(cardinality int, tasks []int) error) error {
	if p.runs != nil {
		return p.runs.EachUse(fn)
	}
	for i := range p.Uses {
		if err := fn(p.Uses[i].Cardinality, p.Uses[i].Tasks); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders the plan in its legacy wire form {"uses": [...]},
// materializing a run-backed plan first — stored job records and HTTP
// responses are byte-compatible across both backings.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Uses []BinUse `json:"uses"`
	}{Uses: p.Materialized()})
}

// Cost returns the total incentive cost of the plan under the given menu:
// the sum of c_|β| over all bin uses β. Run-backed plans compute it from
// run metadata in the same accumulation order the expanded sum would use,
// so the two forms agree bit for bit.
func (p *Plan) Cost(bins BinSet) (float64, error) {
	if p.runs != nil {
		return p.runs.Cost(bins)
	}
	total := 0.0
	for _, u := range p.Uses {
		b, ok := bins.ByCardinality(u.Cardinality)
		if !ok {
			return 0, fmt.Errorf("core: plan uses unknown bin cardinality %d", u.Cardinality)
		}
		total += b.Cost
	}
	return total, nil
}

// MustCost is Cost that panics on an unknown cardinality; for plans that
// were already validated against the same menu.
func (p *Plan) MustCost(bins BinSet) float64 {
	c, err := p.Cost(bins)
	if err != nil {
		panic(err)
	}
	return c
}

// Counts returns the number of uses per bin cardinality — the {τ_l} vector
// of Definition 3 — arithmetically from run metadata when run-backed.
func (p *Plan) Counts() map[int]int {
	if p.runs != nil {
		return p.runs.Counts()
	}
	out := make(map[int]int)
	for _, u := range p.Uses {
		out[u.Cardinality]++
	}
	return out
}

// NumUses returns the total number of bin uses (crowd-worker batches).
func (p *Plan) NumUses() int {
	if p.runs != nil {
		return p.runs.NumUses()
	}
	return len(p.Uses)
}

// NumAssignments returns the total number of (task, bin) assignments.
func (p *Plan) NumAssignments() int {
	if p.runs != nil {
		return p.runs.NumAssignments()
	}
	n := 0
	for _, u := range p.Uses {
		n += len(u.Tasks)
	}
	return n
}

// TransformedMass returns, for each task index in [0, n), the accumulated
// transformed reliability Σ -ln(1 - r_|β|) over the bins the task is
// assigned to. Tasks absent from the plan have mass 0.
func (p *Plan) TransformedMass(n int, bins BinSet) ([]float64, error) {
	mass := make([]float64, n)
	err := p.EachUse(func(card int, tasks []int) error {
		b, ok := bins.ByCardinality(card)
		if !ok {
			return fmt.Errorf("core: plan uses unknown bin cardinality %d", card)
		}
		w := b.Weight()
		for _, t := range tasks {
			if t < 0 || t >= n {
				return fmt.Errorf("core: plan assigns out-of-range task %d (n=%d)", t, n)
			}
			mass[t] += w
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mass, nil
}

// Reliability returns, for each task index in [0, n), the reliability
// Rel(a_i, B(a_i)) = 1 - Π (1 - r_|β|) achieved by the plan.
func (p *Plan) Reliability(n int, bins BinSet) ([]float64, error) {
	mass, err := p.TransformedMass(n, bins)
	if err != nil {
		return nil, err
	}
	rel := make([]float64, n)
	for i, m := range mass {
		rel[i] = ThresholdFromTheta(m)
	}
	return rel, nil
}

// Validate checks that the plan is a feasible decomposition of the instance:
// every bin use refers to a menu bin, holds at most Cardinality distinct
// tasks with in-range indices, and every task's reliability meets its
// threshold within RelTol.
func (p *Plan) Validate(in *Instance) error {
	n := in.N()
	ui := 0
	err := p.EachUse(func(card int, tasks []int) error {
		defer func() { ui++ }()
		b, ok := in.Bins().ByCardinality(card)
		if !ok {
			return fmt.Errorf("core: use %d refers to unknown bin cardinality %d", ui, card)
		}
		if len(tasks) > b.Cardinality {
			return fmt.Errorf("core: use %d holds %d tasks > cardinality %d", ui, len(tasks), b.Cardinality)
		}
		seen := make(map[int]struct{}, len(tasks))
		for _, t := range tasks {
			if t < 0 || t >= n {
				return fmt.Errorf("core: use %d assigns out-of-range task %d (n=%d)", ui, t, n)
			}
			if _, dup := seen[t]; dup {
				return fmt.Errorf("core: use %d assigns task %d twice", ui, t)
			}
			seen[t] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return err
	}
	mass, err := p.TransformedMass(n, in.Bins())
	if err != nil {
		return err
	}
	for i, m := range mass {
		if need := in.Theta(i); m < need-RelTol {
			return fmt.Errorf("core: task %d reliability %.6f below threshold %.6f",
				i, ThresholdFromTheta(m), in.Threshold(i))
		}
	}
	return nil
}

// Merge appends the uses of other to p. It is used to combine per-partition
// plans in the heterogeneous solver. Merging demotes a run-backed receiver
// to the legacy form (other's runs are expanded with fresh storage); the
// run-native combiner is MergePlans / MergePlanRuns.
func (p *Plan) Merge(other *Plan) {
	if p.runs != nil {
		p.Uses = p.runs.Expand()
		p.runs = nil
	}
	if other.runs != nil {
		p.Uses = append(p.Uses, other.runs.Expand()...)
		return
	}
	p.Uses = append(p.Uses, other.Uses...)
}

// empty reports whether the plan holds no uses in either backing.
func (p *Plan) empty() bool {
	return p == nil || (len(p.Uses) == 0 && (p.runs == nil || len(p.runs.Runs) == 0))
}

// MergePlans combines plans (nil entries skipped) into one new plan, in
// order. Cost is additive: the merged plan's cost is the sum of the parts'
// costs, and when the parts cover disjoint task sets against a shared menu
// the merged plan is feasible iff every part is. Task storage is copied, so
// mutating the merged plan (e.g. OffsetTasks) never touches the inputs —
// which also makes MergePlans(p) the canonical deep copy. When every
// non-empty input is run-backed the merge stays in run form (arenas
// concatenated, run offsets rebased — no expansion); any legacy input
// demotes the whole merge to the legacy copying path. The service layer
// uses it to reassemble per-shard and per-partition plans.
func MergePlans(plans ...*Plan) *Plan {
	runsOnly := false
	for _, p := range plans {
		if p.empty() {
			continue
		}
		if p.runs == nil {
			runsOnly = false
			break
		}
		runsOnly = true
	}
	if runsOnly {
		prs := make([]*PlanRuns, 0, len(plans))
		for _, p := range plans {
			if !p.empty() {
				prs = append(prs, p.runs)
			}
		}
		return NewRunPlan(MergePlanRuns(prs...))
	}
	total := 0
	for _, p := range plans {
		if p != nil {
			total += p.NumUses()
		}
	}
	out := &Plan{Uses: make([]BinUse, 0, total)}
	for _, p := range plans {
		if p == nil {
			continue
		}
		if p.runs != nil {
			out.Uses = append(out.Uses, p.runs.Expand()...)
			continue
		}
		for _, u := range p.Uses {
			out.Uses = append(out.Uses, BinUse{
				Cardinality: u.Cardinality,
				Tasks:       append([]int(nil), u.Tasks...),
			})
		}
	}
	return out
}

// OffsetTasks shifts every task identifier in the plan by delta. A caller
// that solves a sub-problem in its own local index space 0..n-1 (the service
// shards instead pass global ids through the solver, so they never need
// this) offsets the resulting plan to its base index before merging, so the
// combined plan addresses the global task space. A run-backed plan offsets
// its arena in one pass. The caller must own the plan exclusively.
func (p *Plan) OffsetTasks(delta int) {
	if p.runs != nil {
		p.runs.OffsetTasks(delta)
		return
	}
	if delta == 0 {
		return
	}
	for ui := range p.Uses {
		tasks := p.Uses[ui].Tasks
		for ti := range tasks {
			tasks[ti] += delta
		}
	}
}

// Summary is a compact, printable description of a plan: uses per
// cardinality plus the total cost, as in the paper's worked examples.
type Summary struct {
	// UsesByCardinality maps bin cardinality l to the number of uses τ_l.
	UsesByCardinality map[int]int
	// NumUses is the total number of bin uses.
	NumUses int
	// NumAssignments is the total number of (task, bin) pairs.
	NumAssignments int
	// Cost is the total incentive cost.
	Cost float64
}

// Summarize computes the plan's Summary under the given menu.
func (p *Plan) Summarize(bins BinSet) (Summary, error) {
	cost, err := p.Cost(bins)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		UsesByCardinality: p.Counts(),
		NumUses:           p.NumUses(),
		NumAssignments:    p.NumAssignments(),
		Cost:              cost,
	}, nil
}

// String renders the summary as "τ_l×b_l + ... = $cost" with cardinalities
// in ascending order.
func (s Summary) String() string {
	cards := make([]int, 0, len(s.UsesByCardinality))
	for l := range s.UsesByCardinality {
		cards = append(cards, l)
	}
	sort.Ints(cards)
	out := ""
	for i, l := range cards {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%d×b%d", s.UsesByCardinality[l], l)
	}
	if out == "" {
		out = "(empty)"
	}
	return fmt.Sprintf("%s = $%.4f", out, s.Cost)
}

// LowerBoundLP returns the fractional covering lower bound on the optimal
// plan cost: each task i fractionally buys θ_i / (l·w_l) uses of the bin
// with the best cost per unit of transformed mass. This is the LP value used
// in the proof of Theorem 2 (OPT >= n · OPQ1.UC in the homogeneous case) and
// serves as the reference point for approximation-ratio tests.
func LowerBoundLP(in *Instance) float64 {
	best := math.Inf(1)
	for _, b := range in.Bins().Bins() {
		// Cost per unit transformed mass, amortized over a full bin.
		unit := b.Cost / (float64(b.Cardinality) * b.Weight())
		if unit < best {
			best = unit
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	total := 0.0
	for i := 0; i < in.N(); i++ {
		total += in.Theta(i)
	}
	return best * total
}
