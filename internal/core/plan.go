package core

import (
	"fmt"
	"math"
	"sort"
)

// RelTol is the absolute tolerance used when checking reliability
// constraints. Transformed demands are sums of logarithms, so exact equality
// is not attainable in floating point; a plan is feasible when every task's
// transformed mass is within RelTol of its demand.
const RelTol = 1e-9

// BinUse is one use of a task bin: a concrete batch of distinct atomic tasks
// handed to one crowd worker.
type BinUse struct {
	// Cardinality selects which bin of the menu is used. The number of
	// assigned tasks may be smaller than the cardinality (a partially
	// filled bin still costs the full c_l).
	Cardinality int `json:"cardinality"`
	// Tasks lists the indices of the atomic tasks placed in this bin.
	Tasks []int `json:"tasks"`
}

// Plan is a decomposition plan DP_T: a multiset of bin uses with concrete
// task placements.
type Plan struct {
	Uses []BinUse `json:"uses"`
}

// Cost returns the total incentive cost of the plan under the given menu:
// the sum of c_|β| over all bin uses β.
func (p *Plan) Cost(bins BinSet) (float64, error) {
	total := 0.0
	for _, u := range p.Uses {
		b, ok := bins.ByCardinality(u.Cardinality)
		if !ok {
			return 0, fmt.Errorf("core: plan uses unknown bin cardinality %d", u.Cardinality)
		}
		total += b.Cost
	}
	return total, nil
}

// MustCost is Cost that panics on an unknown cardinality; for plans that
// were already validated against the same menu.
func (p *Plan) MustCost(bins BinSet) float64 {
	c, err := p.Cost(bins)
	if err != nil {
		panic(err)
	}
	return c
}

// Counts returns the number of uses per bin cardinality — the {τ_l} vector
// of Definition 3.
func (p *Plan) Counts() map[int]int {
	out := make(map[int]int)
	for _, u := range p.Uses {
		out[u.Cardinality]++
	}
	return out
}

// NumUses returns the total number of bin uses (crowd-worker batches).
func (p *Plan) NumUses() int { return len(p.Uses) }

// NumAssignments returns the total number of (task, bin) assignments.
func (p *Plan) NumAssignments() int {
	n := 0
	for _, u := range p.Uses {
		n += len(u.Tasks)
	}
	return n
}

// TransformedMass returns, for each task index in [0, n), the accumulated
// transformed reliability Σ -ln(1 - r_|β|) over the bins the task is
// assigned to. Tasks absent from the plan have mass 0.
func (p *Plan) TransformedMass(n int, bins BinSet) ([]float64, error) {
	mass := make([]float64, n)
	for _, u := range p.Uses {
		b, ok := bins.ByCardinality(u.Cardinality)
		if !ok {
			return nil, fmt.Errorf("core: plan uses unknown bin cardinality %d", u.Cardinality)
		}
		w := b.Weight()
		for _, t := range u.Tasks {
			if t < 0 || t >= n {
				return nil, fmt.Errorf("core: plan assigns out-of-range task %d (n=%d)", t, n)
			}
			mass[t] += w
		}
	}
	return mass, nil
}

// Reliability returns, for each task index in [0, n), the reliability
// Rel(a_i, B(a_i)) = 1 - Π (1 - r_|β|) achieved by the plan.
func (p *Plan) Reliability(n int, bins BinSet) ([]float64, error) {
	mass, err := p.TransformedMass(n, bins)
	if err != nil {
		return nil, err
	}
	rel := make([]float64, n)
	for i, m := range mass {
		rel[i] = ThresholdFromTheta(m)
	}
	return rel, nil
}

// Validate checks that the plan is a feasible decomposition of the instance:
// every bin use refers to a menu bin, holds at most Cardinality distinct
// tasks with in-range indices, and every task's reliability meets its
// threshold within RelTol.
func (p *Plan) Validate(in *Instance) error {
	n := in.N()
	for ui, u := range p.Uses {
		b, ok := in.Bins().ByCardinality(u.Cardinality)
		if !ok {
			return fmt.Errorf("core: use %d refers to unknown bin cardinality %d", ui, u.Cardinality)
		}
		if len(u.Tasks) > b.Cardinality {
			return fmt.Errorf("core: use %d holds %d tasks > cardinality %d", ui, len(u.Tasks), b.Cardinality)
		}
		seen := make(map[int]struct{}, len(u.Tasks))
		for _, t := range u.Tasks {
			if t < 0 || t >= n {
				return fmt.Errorf("core: use %d assigns out-of-range task %d (n=%d)", ui, t, n)
			}
			if _, dup := seen[t]; dup {
				return fmt.Errorf("core: use %d assigns task %d twice", ui, t)
			}
			seen[t] = struct{}{}
		}
	}
	mass, err := p.TransformedMass(n, in.Bins())
	if err != nil {
		return err
	}
	for i, m := range mass {
		if need := in.Theta(i); m < need-RelTol {
			return fmt.Errorf("core: task %d reliability %.6f below threshold %.6f",
				i, ThresholdFromTheta(m), in.Threshold(i))
		}
	}
	return nil
}

// Merge appends the uses of other to p. It is used to combine per-partition
// plans in the heterogeneous solver.
func (p *Plan) Merge(other *Plan) {
	p.Uses = append(p.Uses, other.Uses...)
}

// MergePlans combines plans (nil entries skipped) into one new plan, in
// order. Cost is additive: the merged plan's cost is the sum of the parts'
// costs, and when the parts cover disjoint task sets against a shared menu
// the merged plan is feasible iff every part is. Task slices are copied, so
// mutating the merged plan (e.g. OffsetTasks) never touches the inputs. The
// service layer uses it to reassemble per-shard and per-partition plans.
func MergePlans(plans ...*Plan) *Plan {
	total := 0
	for _, p := range plans {
		if p != nil {
			total += len(p.Uses)
		}
	}
	out := &Plan{Uses: make([]BinUse, 0, total)}
	for _, p := range plans {
		if p == nil {
			continue
		}
		for _, u := range p.Uses {
			out.Uses = append(out.Uses, BinUse{
				Cardinality: u.Cardinality,
				Tasks:       append([]int(nil), u.Tasks...),
			})
		}
	}
	return out
}

// OffsetTasks shifts every task identifier in the plan by delta. A caller
// that solves a sub-problem in its own local index space 0..n-1 (the service
// shards instead pass global ids through SolveWithQueue, so they never need
// this) offsets the resulting plan to its base index before merging, so the
// combined plan addresses the global task space.
func (p *Plan) OffsetTasks(delta int) {
	if delta == 0 {
		return
	}
	for ui := range p.Uses {
		tasks := p.Uses[ui].Tasks
		for ti := range tasks {
			tasks[ti] += delta
		}
	}
}

// Summary is a compact, printable description of a plan: uses per
// cardinality plus the total cost, as in the paper's worked examples.
type Summary struct {
	// UsesByCardinality maps bin cardinality l to the number of uses τ_l.
	UsesByCardinality map[int]int
	// NumUses is the total number of bin uses.
	NumUses int
	// NumAssignments is the total number of (task, bin) pairs.
	NumAssignments int
	// Cost is the total incentive cost.
	Cost float64
}

// Summarize computes the plan's Summary under the given menu.
func (p *Plan) Summarize(bins BinSet) (Summary, error) {
	cost, err := p.Cost(bins)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		UsesByCardinality: p.Counts(),
		NumUses:           p.NumUses(),
		NumAssignments:    p.NumAssignments(),
		Cost:              cost,
	}, nil
}

// String renders the summary as "τ_l×b_l + ... = $cost" with cardinalities
// in ascending order.
func (s Summary) String() string {
	cards := make([]int, 0, len(s.UsesByCardinality))
	for l := range s.UsesByCardinality {
		cards = append(cards, l)
	}
	sort.Ints(cards)
	out := ""
	for i, l := range cards {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%d×b%d", s.UsesByCardinality[l], l)
	}
	if out == "" {
		out = "(empty)"
	}
	return fmt.Sprintf("%s = $%.4f", out, s.Cost)
}

// LowerBoundLP returns the fractional covering lower bound on the optimal
// plan cost: each task i fractionally buys θ_i / (l·w_l) uses of the bin
// with the best cost per unit of transformed mass. This is the LP value used
// in the proof of Theorem 2 (OPT >= n · OPQ1.UC in the homogeneous case) and
// serves as the reference point for approximation-ratio tests.
func LowerBoundLP(in *Instance) float64 {
	best := math.Inf(1)
	for _, b := range in.Bins().Bins() {
		// Cost per unit transformed mass, amortized over a full bin.
		unit := b.Cost / (float64(b.Cardinality) * b.Weight())
		if unit < best {
			best = unit
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	total := 0.0
	for i := 0; i < in.N(); i++ {
		total += in.Theta(i)
	}
	return best * total
}
