package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHomogeneous(t *testing.T) {
	in, err := NewHomogeneous(table1(), 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 5 {
		t.Fatalf("N = %d, want 5", in.N())
	}
	if !in.Homogeneous() {
		t.Error("homogeneous instance reports heterogeneous")
	}
	for i := 0; i < 5; i++ {
		if in.Threshold(i) != 0.9 {
			t.Errorf("Threshold(%d) = %v", i, in.Threshold(i))
		}
	}
}

func TestNewHomogeneousRejects(t *testing.T) {
	if _, err := NewHomogeneous(table1(), -1, 0.9); err == nil {
		t.Error("accepted negative n")
	}
	if _, err := NewHomogeneous(table1(), 3, 1.0); err == nil {
		t.Error("accepted t = 1")
	}
	if _, err := NewHomogeneous(table1(), 3, -0.1); err == nil {
		t.Error("accepted t < 0")
	}
	if _, err := NewHomogeneous(BinSet{}, 3, 0.9); err == nil {
		t.Error("accepted empty menu with tasks")
	}
}

func TestHeterogeneousDetection(t *testing.T) {
	in := MustHeterogeneous(table1(), []float64{0.5, 0.6, 0.7, 0.86})
	if in.Homogeneous() {
		t.Error("heterogeneous instance reports homogeneous")
	}
	if got := in.MinThreshold(); got != 0.5 {
		t.Errorf("MinThreshold = %v, want 0.5", got)
	}
	if got := in.MaxThreshold(); got != 0.86 {
		t.Errorf("MaxThreshold = %v, want 0.86", got)
	}
}

func TestEmptyInstance(t *testing.T) {
	in := MustHeterogeneous(table1(), nil)
	if in.N() != 0 {
		t.Fatalf("N = %d, want 0", in.N())
	}
	if !in.Homogeneous() {
		t.Error("empty instance should count as homogeneous")
	}
	if in.MinThreshold() != 0 || in.MaxThreshold() != 0 {
		t.Error("empty instance min/max thresholds should be 0")
	}
}

func TestThresholdsCopy(t *testing.T) {
	src := []float64{0.5, 0.6}
	in := MustHeterogeneous(table1(), src)
	src[0] = 0.99
	if in.Threshold(0) != 0.5 {
		t.Error("instance aliases caller's threshold slice")
	}
	got := in.Thresholds()
	got[1] = 0.11
	if in.Threshold(1) != 0.6 {
		t.Error("Thresholds() exposes internal storage")
	}
}

func TestRelaxedDetection(t *testing.T) {
	// All bin confidences (min 0.8) >= max threshold 0.75 → relaxed.
	in := MustHomogeneous(table1(), 4, 0.75)
	if !in.Relaxed() {
		t.Error("instance with t=0.75 should be relaxed under Table 1 menu")
	}
	in2 := MustHomogeneous(table1(), 4, 0.95)
	if in2.Relaxed() {
		t.Error("instance with t=0.95 should not be relaxed")
	}
}

func TestInstanceTheta(t *testing.T) {
	in := MustHeterogeneous(table1(), []float64{0.5, 0.95})
	if got := in.Theta(0); math.Abs(got-Theta(0.5)) > 1e-15 {
		t.Errorf("Theta(0) = %v", got)
	}
	if got := in.Theta(1); math.Abs(got-Theta(0.95)) > 1e-15 {
		t.Errorf("Theta(1) = %v", got)
	}
}

func TestHomogeneousProperty(t *testing.T) {
	// Property: an instance built by NewHomogeneous is always Homogeneous,
	// and mutating one threshold via a rebuilt instance flips it.
	f := func(n uint8, tRaw float64) bool {
		nn := int(n%50) + 1
		tt := math.Mod(math.Abs(tRaw), 0.99)
		if math.IsNaN(tt) {
			tt = 0.5
		}
		in, err := NewHomogeneous(table1(), nn, tt)
		if err != nil {
			return false
		}
		return in.Homogeneous() && in.MinThreshold() == tt && in.MaxThreshold() == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolverFunc(t *testing.T) {
	s := SolverFunc{SolverName: "x", Fn: func(in *Instance) (*Plan, error) {
		return &Plan{}, nil
	}}
	if s.Name() != "x" {
		t.Errorf("Name = %q", s.Name())
	}
	p, err := s.Solve(nil)
	if err != nil || p == nil {
		t.Errorf("Solve = %v, %v", p, err)
	}
}
