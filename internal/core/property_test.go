package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReliabilityMonotoneInUses: adding any bin use never lowers any task's
// reliability (quick-checked over random plans).
func TestReliabilityMonotoneInUses(t *testing.T) {
	bs := table1()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		const n = 6
		plan := randomPlan(rng, n)
		before, err := plan.Reliability(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		// Append one random extra use.
		extra := randomUse(rng, n)
		plan.Uses = append(plan.Uses, extra)
		after, err := plan.Reliability(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range before {
			if after[i] < before[i]-1e-12 {
				t.Fatalf("trial %d: reliability of task %d fell from %v to %v",
					trial, i, before[i], after[i])
			}
		}
	}
}

func randomUse(rng *rand.Rand, n int) BinUse {
	card := 1 + rng.Intn(3)
	use := BinUse{Cardinality: card}
	perm := rng.Perm(n)
	for i := 0; i < card && i < n; i++ {
		use.Tasks = append(use.Tasks, perm[i])
	}
	return use
}

func randomPlan(rng *rand.Rand, n int) *Plan {
	p := &Plan{}
	for i := 0; i < rng.Intn(6); i++ {
		p.Uses = append(p.Uses, randomUse(rng, n))
	}
	return p
}

// TestTransformedMassLinear: the transformed mass of a merged plan is the
// sum of the parts' masses (quick-checked).
func TestTransformedMassLinear(t *testing.T) {
	bs := table1()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		const n = 5
		a := randomPlan(rng, n)
		b := randomPlan(rng, n)
		ma, err := a.TransformedMass(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.TransformedMass(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		merged := &Plan{}
		merged.Merge(a)
		merged.Merge(b)
		mm, err := merged.TransformedMass(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(mm[i]-(ma[i]+mb[i])) > 1e-12 {
				t.Fatalf("trial %d: mass not additive at task %d", trial, i)
			}
		}
	}
}

// TestReliabilityNeverExceedsOne is a quick property over arbitrary
// threshold/confidence inputs.
func TestReliabilityNeverExceedsOne(t *testing.T) {
	f := func(r1, r2, r3 float64) bool {
		// Map arbitrary floats into (0,1).
		rs := []float64{sq(r1), sq(r2), sq(r3)}
		mass := 0.0
		for _, r := range rs {
			mass += -math.Log1p(-r)
		}
		rel := ThresholdFromTheta(mass)
		return rel >= 0 && rel <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// sq maps an arbitrary float into (0, 1), NaN-safe.
func sq(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	x := math.Abs(v)
	return (x / (1 + x) * 0.98) + 0.01
}

// TestLowerBoundBelowAnyFeasiblePlan: the fractional bound never exceeds
// the cost of a feasible plan built by saturating every task with the
// cheapest bin.
func TestLowerBoundBelowAnyFeasiblePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	bs := table1()
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		th := make([]float64, n)
		for i := range th {
			th[i] = rng.Float64() * 0.97
		}
		in := MustHeterogeneous(bs, th)
		plan := &Plan{}
		b1, _ := bs.ByCardinality(1)
		for i := 0; i < n; i++ {
			need := in.Theta(i)
			for need > 0 {
				plan.Uses = append(plan.Uses, BinUse{Cardinality: 1, Tasks: []int{i}})
				need -= b1.Weight()
			}
		}
		if err := plan.Validate(in); err != nil {
			t.Fatalf("trial %d: saturation plan infeasible: %v", trial, err)
		}
		if lb := LowerBoundLP(in); lb > plan.MustCost(bs)+1e-9 {
			t.Fatalf("trial %d: LP bound %v above feasible cost %v", trial, lb, plan.MustCost(bs))
		}
	}
}
