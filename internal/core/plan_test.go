package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// examplePlanP1 is plan P1 of Example 4: four 2-cardinality bins
// {a1,a2} ×2 and {a3,a4} ×2, total cost 0.72, reliability 0.9775 each.
func examplePlanP1() *Plan {
	return &Plan{Uses: []BinUse{
		{Cardinality: 2, Tasks: []int{0, 1}},
		{Cardinality: 2, Tasks: []int{0, 1}},
		{Cardinality: 2, Tasks: []int{2, 3}},
		{Cardinality: 2, Tasks: []int{2, 3}},
	}}
}

// examplePlanP2 is plan P2 of Example 4: {a1,a2,a3}, {a1,a2,a4}, {a3,a4},
// total cost 0.66 — the optimal plan for t = 0.95.
func examplePlanP2() *Plan {
	return &Plan{Uses: []BinUse{
		{Cardinality: 3, Tasks: []int{0, 1, 2}},
		{Cardinality: 3, Tasks: []int{0, 1, 3}},
		{Cardinality: 2, Tasks: []int{2, 3}},
	}}
}

func TestExample4PlanP1(t *testing.T) {
	in := MustHomogeneous(table1(), 4, 0.95)
	p := examplePlanP1()
	if err := p.Validate(in); err != nil {
		t.Fatalf("P1 should be feasible: %v", err)
	}
	cost := p.MustCost(in.Bins())
	if math.Abs(cost-0.72) > 1e-12 {
		t.Errorf("P1 cost = %v, want 0.72", cost)
	}
	rel, err := p.Reliability(4, in.Bins())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rel {
		// 1 - 0.15^2 = 0.9775 (the paper rounds to 0.98).
		if math.Abs(r-0.9775) > 1e-9 {
			t.Errorf("P1 reliability[%d] = %v, want 0.9775", i, r)
		}
	}
}

func TestExample4PlanP2(t *testing.T) {
	in := MustHomogeneous(table1(), 4, 0.95)
	p := examplePlanP2()
	if err := p.Validate(in); err != nil {
		t.Fatalf("P2 should be feasible: %v", err)
	}
	cost := p.MustCost(in.Bins())
	if math.Abs(cost-0.66) > 1e-12 {
		t.Errorf("P2 cost = %v, want 0.66", cost)
	}
}

func TestPlanValidateCatchesViolations(t *testing.T) {
	in := MustHomogeneous(table1(), 4, 0.95)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"unknown bin", &Plan{Uses: []BinUse{{Cardinality: 7, Tasks: []int{0}}}}},
		{"overfull bin", &Plan{Uses: []BinUse{{Cardinality: 1, Tasks: []int{0, 1}}}}},
		{"duplicate task in bin", &Plan{Uses: []BinUse{{Cardinality: 2, Tasks: []int{0, 0}}}}},
		{"out of range task", &Plan{Uses: []BinUse{{Cardinality: 1, Tasks: []int{4}}}}},
		{"negative task", &Plan{Uses: []BinUse{{Cardinality: 1, Tasks: []int{-1}}}}},
		{"below threshold", examplePlanUnder()},
		{"empty plan", &Plan{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.plan.Validate(in); err == nil {
				t.Errorf("Validate accepted infeasible plan %q", c.name)
			}
		})
	}
}

// examplePlanUnder covers each task once with b2 (rel 0.85 < 0.95).
func examplePlanUnder() *Plan {
	return &Plan{Uses: []BinUse{
		{Cardinality: 2, Tasks: []int{0, 1}},
		{Cardinality: 2, Tasks: []int{2, 3}},
	}}
}

func TestPlanCountsAndAssignments(t *testing.T) {
	p := examplePlanP2()
	counts := p.Counts()
	if counts[3] != 2 || counts[2] != 1 {
		t.Errorf("Counts = %v, want map[2:1 3:2]", counts)
	}
	if p.NumUses() != 3 {
		t.Errorf("NumUses = %d, want 3", p.NumUses())
	}
	if p.NumAssignments() != 8 {
		t.Errorf("NumAssignments = %d, want 8", p.NumAssignments())
	}
}

func TestPlanCostUnknownBin(t *testing.T) {
	p := &Plan{Uses: []BinUse{{Cardinality: 9, Tasks: []int{0}}}}
	if _, err := p.Cost(table1()); err == nil {
		t.Error("Cost accepted unknown cardinality")
	}
}

func TestTransformedMassAdds(t *testing.T) {
	bs := table1()
	p := &Plan{Uses: []BinUse{
		{Cardinality: 1, Tasks: []int{0}},
		{Cardinality: 3, Tasks: []int{0, 1, 2}},
	}}
	mass, err := p.TransformedMass(3, bs)
	if err != nil {
		t.Fatal(err)
	}
	w1 := -math.Log1p(-0.9)
	w3 := -math.Log1p(-0.8)
	want := []float64{w1 + w3, w3, w3}
	for i := range want {
		if math.Abs(mass[i]-want[i]) > 1e-12 {
			t.Errorf("mass[%d] = %v, want %v", i, mass[i], want[i])
		}
	}
}

func TestPlanMerge(t *testing.T) {
	a := &Plan{Uses: []BinUse{{Cardinality: 1, Tasks: []int{0}}}}
	b := &Plan{Uses: []BinUse{{Cardinality: 2, Tasks: []int{1, 2}}}}
	a.Merge(b)
	if a.NumUses() != 2 {
		t.Fatalf("merged NumUses = %d, want 2", a.NumUses())
	}
}

func TestMergePlans(t *testing.T) {
	a := &Plan{Uses: []BinUse{{Cardinality: 1, Tasks: []int{0}}}}
	b := &Plan{Uses: []BinUse{{Cardinality: 2, Tasks: []int{1, 2}}}}
	merged := MergePlans(a, nil, b, &Plan{})
	if merged.NumUses() != 2 || merged.NumAssignments() != 3 {
		t.Fatalf("merged = %d uses / %d assignments, want 2/3", merged.NumUses(), merged.NumAssignments())
	}
	// Inputs are not aliased into appends past their own uses.
	if a.NumUses() != 1 || b.NumUses() != 1 {
		t.Fatal("MergePlans mutated its inputs")
	}
	// Task slices are copied: offsetting the merged plan must leave the
	// inputs untouched.
	merged.OffsetTasks(100)
	if a.Uses[0].Tasks[0] != 0 || b.Uses[0].Tasks[0] != 1 {
		t.Fatal("merged plan aliases input task slices")
	}
	merged.OffsetTasks(-100)
	cost, err := merged.Cost(table1())
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.10 + 0.18; math.Abs(cost-want) > 1e-12 {
		t.Fatalf("merged cost %v, want %v (additive)", cost, want)
	}
	if empty := MergePlans(); empty == nil || empty.NumUses() != 0 {
		t.Fatal("MergePlans() must return an empty plan")
	}
}

func TestOffsetTasks(t *testing.T) {
	p := &Plan{Uses: []BinUse{
		{Cardinality: 2, Tasks: []int{0, 1}},
		{Cardinality: 1, Tasks: []int{2}},
	}}
	p.OffsetTasks(10)
	if got := p.Uses[0].Tasks[0]; got != 10 {
		t.Fatalf("offset task = %d, want 10", got)
	}
	if got := p.Uses[1].Tasks[0]; got != 12 {
		t.Fatalf("offset task = %d, want 12", got)
	}
	p.OffsetTasks(-10)
	if p.Uses[0].Tasks[0] != 0 || p.Uses[1].Tasks[0] != 2 {
		t.Fatal("negative offset must invert")
	}
}

func TestSummaryString(t *testing.T) {
	in := MustHomogeneous(table1(), 4, 0.95)
	s, err := examplePlanP2().Summarize(in.Bins())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Cost-0.66) > 1e-12 {
		t.Errorf("Summary.Cost = %v, want 0.66", s.Cost)
	}
	str := s.String()
	if !strings.Contains(str, "1×b2") || !strings.Contains(str, "2×b3") {
		t.Errorf("Summary.String() = %q, want it to mention 1×b2 and 2×b3", str)
	}
	empty := Summary{}
	if !strings.Contains(empty.String(), "(empty)") {
		t.Errorf("empty Summary.String() = %q", empty.String())
	}
}

func TestLowerBoundLP(t *testing.T) {
	in := MustHomogeneous(table1(), 4, 0.95)
	lb := LowerBoundLP(in)
	// The optimal plan P2 costs 0.66; the LP bound must be below it but
	// positive.
	if lb <= 0 || lb > 0.66+1e-12 {
		t.Errorf("LowerBoundLP = %v, want in (0, 0.66]", lb)
	}
	// b1 has the best cost per unit mass: 0.1/(1*2.303) = 0.0434;
	// total demand 4*2.996 = 11.98 → bound ≈ 0.5204.
	want := 0.10 / (1 * -math.Log1p(-0.9)) * 4 * Theta(0.95)
	if math.Abs(lb-want) > 1e-9 {
		t.Errorf("LowerBoundLP = %v, want %v", lb, want)
	}
}

func TestLowerBoundEmptyMenu(t *testing.T) {
	in := MustHeterogeneous(BinSet{}, nil)
	if lb := LowerBoundLP(in); lb != 0 {
		t.Errorf("LowerBoundLP on empty instance = %v, want 0", lb)
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := MustHeterogeneous(table1(), []float64{0.5, 0.6, 0.7, 0.86})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.Threshold(3) != 0.86 {
		t.Errorf("round-trip lost data: n=%d t3=%v", back.N(), back.Threshold(3))
	}
	if back.Bins().Len() != 3 {
		t.Errorf("round-trip lost bins: %d", back.Bins().Len())
	}
}

func TestInstanceJSONRejectsBad(t *testing.T) {
	var in Instance
	bad := []string{
		`{"bins":[{"cardinality":1,"confidence":2,"cost":0.1}],"thresholds":[0.5]}`,
		`{"bins":[],"thresholds":[0.5]}`,
		`{"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1}],"thresholds":[1.5]}`,
		`{not json`,
	}
	for _, s := range bad {
		if err := json.Unmarshal([]byte(s), &in); err == nil {
			t.Errorf("UnmarshalJSON accepted %q", s)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := examplePlanP2()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumUses() != 3 || back.NumAssignments() != 8 {
		t.Errorf("round-trip lost uses: %d/%d", back.NumUses(), back.NumAssignments())
	}
}
