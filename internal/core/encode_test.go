package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// encodeViaStream runs the streaming encoder into a buffer.
func encodeViaStream(t testing.TB, p *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	return buf.Bytes()
}

func assertEncodeMatchesMarshal(t testing.TB, p *Plan) {
	t.Helper()
	want, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	got := encodeViaStream(t, p)
	if !bytes.Equal(got, want) {
		t.Fatalf("EncodeJSON differs from MarshalJSON:\n got %s\nwant %s", got, want)
	}
}

func TestEncodeJSONMatchesMarshal(t *testing.T) {
	pr := testRuns()
	cases := map[string]*Plan{
		"run-backed":        NewRunPlan(pr),
		"legacy-expanded":   {Uses: pr.Expand()},
		"empty-run":         NewRunPlan(&PlanRuns{}),
		"empty-legacy-nil":  {},
		"legacy-empty-uses": {Uses: []BinUse{}},
		"legacy-nil-tasks":  {Uses: []BinUse{{Cardinality: 2, Tasks: nil}, {Cardinality: 3, Tasks: []int{}}, {Cardinality: 2, Tasks: []int{7, -3}}}},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) { assertEncodeMatchesMarshal(t, p) })
	}
}

func TestEncodeJSONRandomizedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(8)) // fixed seed: the test must be deterministic
	for i := 0; i < 200; i++ {
		pr := randomRuns(r)
		assertEncodeMatchesMarshal(t, NewRunPlan(pr))
		assertEncodeMatchesMarshal(t, &Plan{Uses: pr.Expand()})
	}
}

func TestEncodeUsesNDJSON(t *testing.T) {
	plan := NewRunPlan(testRuns())
	var buf bytes.Buffer
	if err := plan.EncodeUsesNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	uses := plan.Materialized()
	if len(lines) != len(uses) {
		t.Fatalf("NDJSON has %d lines, plan has %d uses", len(lines), len(uses))
	}
	for i, u := range uses {
		want, err := json.Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		if lines[i] != string(want) {
			t.Fatalf("line %d: %s != %s", i, lines[i], want)
		}
	}
	// An empty plan writes nothing at all.
	buf.Reset()
	if err := NewRunPlan(&PlanRuns{}).EncodeUsesNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty plan NDJSON wrote %q", buf.String())
	}
}

// failAfter errors once n bytes have been written, simulating a client
// that disconnects mid-stream.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.written += len(p)
	if f.written > f.n {
		return 0, errShortWrite
	}
	return len(p), nil
}

var errShortWrite = errors.New("writer failed")

func TestEncodeJSONPropagatesWriterError(t *testing.T) {
	pr := randomRuns(rand.New(rand.NewSource(99)))
	if err := NewRunPlan(pr).EncodeJSON(&failAfter{n: 64}); err == nil {
		t.Fatal("EncodeJSON swallowed the writer error")
	}
	if err := NewRunPlan(pr).EncodeUsesNDJSON(&failAfter{n: 64}); err == nil {
		t.Fatal("EncodeUsesNDJSON swallowed the writer error")
	}
}

// randomRuns builds a structurally valid random run plan: several runs of
// random combinations, full and padded, over one sequential arena.
func randomRuns(r *rand.Rand) *PlanRuns {
	blockLens := []int{2, 3, 4, 6, 12}
	nRuns := r.Intn(5)
	pr := &PlanRuns{}
	next := 0
	for i := 0; i < nRuns; i++ {
		L := blockLens[r.Intn(len(blockLens))]
		var parts []RunPart
		for card := 1; card <= L; card++ {
			if L%card != 0 {
				continue
			}
			if r.Intn(3) == 0 {
				parts = append(parts, RunPart{Cardinality: card, Count: 1 + r.Intn(2)})
			}
		}
		if len(parts) == 0 {
			parts = []RunPart{{Cardinality: L, Count: 1}}
		}
		comb := &RunComb{Parts: parts, BlockLen: L}
		var run BlockRun
		if L > 1 && r.Intn(3) == 0 { // padded remainder run
			rem := 1 + r.Intn(L-1)
			run = BlockRun{Comb: comb, Blocks: 0, Off: next, Len: rem}
			next += rem
		} else {
			blocks := 1 + r.Intn(3)
			run = BlockRun{Comb: comb, Blocks: blocks, Off: next, Len: blocks * L}
			next += blocks * L
		}
		pr.Runs = append(pr.Runs, run)
	}
	pr.Arena = make([]int, next)
	for i := range pr.Arena {
		pr.Arena[i] = i
	}
	return pr
}

func FuzzEncodeJSONEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		pr := randomRuns(rand.New(rand.NewSource(seed)))
		assertEncodeMatchesMarshal(t, NewRunPlan(pr))
		assertEncodeMatchesMarshal(t, &Plan{Uses: pr.Expand()})
	})
}

func BenchmarkEncodeJSONStream(b *testing.B) {
	pr := randomRuns(rand.New(rand.NewSource(3)))
	plan := NewRunPlan(pr)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := plan.EncodeJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
