package core

import (
	"fmt"
	"sync"
)

// This file holds the compact block-run plan representation. Algorithm 3's
// output is extremely regular — a handful of segments, each k identical full
// blocks of one combination, plus at most one padded block — yet the legacy
// Plan form stores it as thousands of independently allocated BinUse slices.
// PlanRuns stores the same plan as run metadata over a single task-id arena:
// cost, use counts and summaries are computed arithmetically from the runs,
// iteration streams uses without materializing them, and the legacy []BinUse
// form is produced once, lazily, only where a caller truly needs per-use
// task lists (JSON encoding, mostly).

// RunPart is one (cardinality, per-task multiplicity) component of a
// RunComb: within one block, every task is assigned Count times to bins of
// the given cardinality.
type RunPart struct {
	// Cardinality is the bin size |β| the part assigns tasks to.
	Cardinality int
	// Count is n_k — how many times each task of the block lands in a bin
	// of this cardinality.
	Count int
}

// RunComb is the block recipe a run applies: the paper's combination
// Comb = {n_k1 × b_k1, ...} reduced to what expansion needs. One full
// application covers exactly BlockLen tasks and uses
// Count·BlockLen/Cardinality bins per part, in Parts order. RunCombs are
// shared read-only across runs and plans; the solver builds one per
// distinct combination it applies.
type RunComb struct {
	// Parts lists the components in ascending menu order. Every part's
	// Cardinality must divide BlockLen.
	Parts []RunPart
	// BlockLen is the combination's natural block size (the LCM of the
	// used cardinalities).
	BlockLen int
}

// UsesPerBlock returns the number of bin uses one block application emits.
func (c *RunComb) UsesPerBlock() int {
	n := 0
	for _, p := range c.Parts {
		n += p.Count * (c.BlockLen / p.Cardinality)
	}
	return n
}

// assignsPerTask returns Σ n_k, the number of bins each full-block task
// lands in.
func (c *RunComb) assignsPerTask() int {
	n := 0
	for _, p := range c.Parts {
		n += p.Count
	}
	return n
}

// BlockRun is one run of a plan: Blocks consecutive full applications of
// Comb over Arena[Off : Off+Len] (Len = Blocks·BlockLen), or — when Blocks
// is zero — a single padded application over Len < BlockLen remainder
// tasks (Algorithm 3's over-provisioned final step: the remainder cycles
// to fill the block, duplicate tasks within one bin are dropped, the full
// block cost is paid).
type BlockRun struct {
	// Comb is the applied combination; shared and read-only.
	Comb *RunComb
	// Blocks counts full block applications; 0 marks a padded run.
	Blocks int
	// Off and Len locate the run's task ids in the owning plan's arena.
	Off, Len int
}

// Padded reports whether the run is a padded remainder application.
func (r *BlockRun) Padded() bool { return r.Blocks == 0 }

// check rejects structurally malformed runs (hand-built PlanRuns are
// public API; solver-emitted runs always pass). arenaLen bounds the
// run's window.
func (r *BlockRun) check(arenaLen int) error {
	if r.Comb == nil {
		return fmt.Errorf("core: run has no combination")
	}
	if r.Comb.BlockLen <= 0 {
		return fmt.Errorf("core: run combination has block length %d", r.Comb.BlockLen)
	}
	for _, p := range r.Comb.Parts {
		if p.Cardinality <= 0 || p.Count < 0 || r.Comb.BlockLen%p.Cardinality != 0 {
			return fmt.Errorf("core: run part (cardinality %d, count %d) malformed for block length %d",
				p.Cardinality, p.Count, r.Comb.BlockLen)
		}
	}
	if r.Off < 0 || r.Len < 0 || r.Off+r.Len > arenaLen {
		return fmt.Errorf("core: run window [%d,%d) outside the arena (len %d)", r.Off, r.Off+r.Len, arenaLen)
	}
	if r.Padded() {
		if r.Len < 1 || r.Len >= r.Comb.BlockLen {
			return fmt.Errorf("core: padded run covers %d tasks, want 1..%d", r.Len, r.Comb.BlockLen-1)
		}
		return nil
	}
	if r.Blocks < 0 || r.Len != r.Blocks*r.Comb.BlockLen {
		return fmt.Errorf("core: full run of %d blocks covers %d tasks, want %d",
			r.Blocks, r.Len, r.Blocks*r.Comb.BlockLen)
	}
	return nil
}

// uses returns the number of bin uses the run expands to. A padded run
// emits exactly as many uses as a full block — only task lists shrink.
func (r *BlockRun) uses() int {
	per := r.Comb.UsesPerBlock()
	if r.Padded() {
		return per
	}
	return r.Blocks * per
}

// assignments returns the number of (task, bin) pairs the run expands to.
// For a padded run over rem tasks, a use of cardinality card holds
// min(card, rem) distinct tasks: block positions are consecutive integers
// modulo rem, so a window of card positions covers min(card, rem) distinct
// remainder tasks.
func (r *BlockRun) assignments() int {
	if !r.Padded() {
		return r.Len * r.Comb.assignsPerTask()
	}
	n := 0
	for _, p := range r.Comb.Parts {
		m := p.Cardinality
		if m > r.Len {
			m = r.Len
		}
		n += p.Count * (r.Comb.BlockLen / p.Cardinality) * m
	}
	return n
}

// PlanRuns is a decomposition plan in compact block-run form: run metadata
// over one shared task-id arena. It expands to exactly the same bin-use
// sequence the legacy solver emitted — same uses, same order, same task
// ids — which is what keeps every cost computed from it bit-identical to
// the legacy accumulation.
//
// A PlanRuns is read-only after construction except for OffsetTasks, which
// requires exclusive ownership. Materialize is safe for concurrent use.
// Arena ids must be distinct (the solvers' precondition, enforced at the
// service boundary): the padded expansion derives within-bin dedup from
// block positions, so a duplicate id in the remainder would occupy two
// slots of one bin — exactly the invalid plan duplicate ids have always
// produced in full blocks. Hand-built plans are validated structurally by
// EachUse/Cost (and Plan.Validate); solver-emitted runs always pass.
type PlanRuns struct {
	// Arena holds every task id the plan addresses; runs reference
	// contiguous windows of it.
	Arena []int
	// Runs is the plan's run sequence, in emission order.
	Runs []BlockRun

	// mat caches the lazily materialized legacy view. Full-block uses
	// alias Arena windows (zero copy); padded uses live in mat.pad so
	// OffsetTasks can keep a done materialization coherent.
	mat struct {
		once sync.Once
		uses []BinUse
		pad  []int
	}
}

// NumTasks returns the number of task ids the plan covers.
func (pr *PlanRuns) NumTasks() int { return len(pr.Arena) }

// NumUses returns the total number of bin uses, computed from run
// metadata without expansion.
func (pr *PlanRuns) NumUses() int {
	n := 0
	for i := range pr.Runs {
		n += pr.Runs[i].uses()
	}
	return n
}

// NumAssignments returns the total number of (task, bin) assignments,
// computed from run metadata without expansion.
func (pr *PlanRuns) NumAssignments() int {
	n := 0
	for i := range pr.Runs {
		n += pr.Runs[i].assignments()
	}
	return n
}

// Counts returns the number of uses per bin cardinality (the {τ_l} vector
// of Definition 3), computed from run metadata without expansion.
func (pr *PlanRuns) Counts() map[int]int {
	out := make(map[int]int)
	for i := range pr.Runs {
		r := &pr.Runs[i]
		blocks := r.Blocks
		if r.Padded() {
			blocks = 1
		}
		for _, p := range r.Comb.Parts {
			out[p.Cardinality] += blocks * p.Count * (r.Comb.BlockLen / p.Cardinality)
		}
	}
	return out
}

// Cost returns the plan's total incentive cost under the menu. The
// accumulation replicates the expanded plan's use order add for add, so
// the result is bit-identical to the legacy per-use sum — the exact
// cost-parity invariants (sharded == unsharded, batched == solo) compare
// floats with ==, so run-backed plans must not round differently. The
// loop touches only run metadata: no uses are materialized and the menu
// is consulted once per run part, not once per use.
func (pr *PlanRuns) Cost(bins BinSet) (float64, error) {
	total := 0.0
	var costs []float64 // per-part bin costs, resolved once per run
	for i := range pr.Runs {
		r := &pr.Runs[i]
		if err := r.check(len(pr.Arena)); err != nil {
			return 0, err
		}
		blocks := r.Blocks
		if r.Padded() {
			blocks = 1
		}
		costs = costs[:0]
		for _, p := range r.Comb.Parts {
			b, ok := bins.ByCardinality(p.Cardinality)
			if !ok {
				return 0, fmt.Errorf("core: plan uses unknown bin cardinality %d", p.Cardinality)
			}
			costs = append(costs, b.Cost)
		}
		// Block-major, then part order — the expansion's use order exactly.
		for b := 0; b < blocks; b++ {
			for pi, p := range r.Comb.Parts {
				per := p.Count * (r.Comb.BlockLen / p.Cardinality)
				c := costs[pi]
				for u := 0; u < per; u++ {
					total += c
				}
			}
		}
	}
	return total, nil
}

// padScratch pools the per-use task buffers EachUse hands out for padded
// runs, so streaming over a plan allocates nothing per use.
var padScratch = sync.Pool{
	New: func() any {
		s := make([]int, 0, 64)
		return &s
	},
}

// EachUse streams the plan's bin uses in expansion order without
// materializing them: full-block uses pass windows of the arena (zero
// copy) and padded uses a pooled scratch slice. The tasks slice is only
// valid for the duration of the callback and must not be retained or
// mutated. Iteration stops at the first non-nil error, which is
// returned; a structurally malformed run (hand-built plans only) is
// reported as an error rather than iterated, which is what lets
// Plan.Validate reject such plans cleanly.
func (pr *PlanRuns) EachUse(fn func(cardinality int, tasks []int) error) error {
	scratchp := padScratch.Get().(*[]int)
	defer padScratch.Put(scratchp)
	for i := range pr.Runs {
		r := &pr.Runs[i]
		if err := r.check(len(pr.Arena)); err != nil {
			return err
		}
		if r.Padded() {
			if err := r.eachPaddedUse(pr.Arena, scratchp, fn); err != nil {
				return err
			}
			continue
		}
		L := r.Comb.BlockLen
		for b := 0; b < r.Blocks; b++ {
			block := pr.Arena[r.Off+b*L : r.Off+(b+1)*L]
			for _, p := range r.Comb.Parts {
				card := p.Cardinality
				for rep := 0; rep < p.Count; rep++ {
					for start := 0; start < L; start += card {
						if err := fn(card, block[start:start+card]); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// eachPaddedUse streams one padded application over rem = Len remainder
// tasks. Block position i holds task rem[i%len(rem)], and a use over
// positions [start, start+card) keeps the first occurrence of each
// distinct task: positions are consecutive integers modulo rem, so the
// distinct tasks are exactly rem[(start+j) % len(rem)] for
// j < min(card, rem) — index arithmetic replaces the per-use dedup map
// the legacy expansion allocated, with byte-identical output (the map
// version also appended tasks in first-occurrence position order).
func (r *BlockRun) eachPaddedUse(arena []int, scratchp *[]int, fn func(cardinality int, tasks []int) error) error {
	rem := arena[r.Off : r.Off+r.Len]
	n := len(rem)
	L := r.Comb.BlockLen
	for _, p := range r.Comb.Parts {
		card := p.Cardinality
		m := card
		if m > n {
			m = n
		}
		if cap(*scratchp) < m {
			*scratchp = make([]int, 0, m)
		}
		tasks := (*scratchp)[:m]
		for rep := 0; rep < p.Count; rep++ {
			for start := 0; start < L; start += card {
				for j := 0; j < m; j++ {
					tasks[j] = rem[(start+j)%n]
				}
				if err := fn(card, tasks); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// appendPaddedTasks appends the padded use's distinct tasks to dst (the
// copying twin of eachPaddedUse's scratch fill).
func appendPaddedTasks(dst []int, rem []int, start, card int) []int {
	n := len(rem)
	m := card
	if m > n {
		m = n
	}
	for j := 0; j < m; j++ {
		dst = append(dst, rem[(start+j)%n])
	}
	return dst
}

// Materialize returns the plan's legacy []BinUse view, built on first call
// and cached: one []BinUse for every use, full-block task lists aliasing
// the arena (zero copy) and padded lists in one shared backing array. The
// result is read-only — it shares storage with the arena — and safe for
// concurrent use. Returns nil for an empty plan, matching the legacy
// solver's empty-plan JSON ("uses":null).
func (pr *PlanRuns) Materialize() []BinUse {
	pr.mat.once.Do(func() {
		for i := range pr.Runs {
			if err := pr.Runs[i].check(len(pr.Arena)); err != nil {
				// No error return here; a malformed hand-built plan is a
				// programmer error — fail loudly instead of dividing by
				// zero deep in the expansion. Plan.Validate / EachUse are
				// the error-returning rejection paths.
				panic(err)
			}
		}
		total := pr.NumUses()
		if total == 0 {
			return
		}
		padLen := 0
		for i := range pr.Runs {
			if pr.Runs[i].Padded() {
				padLen += pr.Runs[i].assignments()
			}
		}
		uses := make([]BinUse, 0, total)
		pad := make([]int, 0, padLen)
		for i := range pr.Runs {
			r := &pr.Runs[i]
			L := r.Comb.BlockLen
			if r.Padded() {
				rem := pr.Arena[r.Off : r.Off+r.Len]
				for _, p := range r.Comb.Parts {
					for rep := 0; rep < p.Count; rep++ {
						for start := 0; start < L; start += p.Cardinality {
							from := len(pad)
							pad = appendPaddedTasks(pad, rem, start, p.Cardinality)
							uses = append(uses, BinUse{Cardinality: p.Cardinality, Tasks: pad[from:len(pad):len(pad)]})
						}
					}
				}
				continue
			}
			for b := 0; b < r.Blocks; b++ {
				base := r.Off + b*L
				for _, p := range r.Comb.Parts {
					card := p.Cardinality
					for rep := 0; rep < p.Count; rep++ {
						for start := 0; start < L; start += card {
							uses = append(uses, BinUse{Cardinality: card, Tasks: pr.Arena[base+start : base+start+card : base+start+card]})
						}
					}
				}
			}
		}
		pr.mat.uses = uses
		pr.mat.pad = pad
	})
	return pr.mat.uses
}

// Expand returns a freshly allocated legacy []BinUse with fully copied
// task lists — one backing array, no aliasing of the arena — for callers
// that need a mutable legacy plan (Plan.Merge, the compat solver entry).
func (pr *PlanRuns) Expand() []BinUse {
	total := pr.NumUses()
	if total == 0 {
		return nil
	}
	uses := make([]BinUse, 0, total)
	backing := make([]int, 0, pr.NumAssignments())
	err := pr.EachUse(func(card int, tasks []int) error {
		from := len(backing)
		backing = append(backing, tasks...)
		uses = append(uses, BinUse{Cardinality: card, Tasks: backing[from:len(backing):len(backing)]})
		return nil
	})
	if err != nil {
		panic(err) // unreachable: the callback never fails
	}
	return uses
}

// OffsetTasks shifts every task id in the plan by delta — one pass over
// the arena instead of the legacy per-use loop. The caller must own the
// plan exclusively: the arena may be shared with a cached materialization
// (kept coherent here) but must not be shared with other live plans.
func (pr *PlanRuns) OffsetTasks(delta int) {
	if delta == 0 {
		return
	}
	for i := range pr.Arena {
		pr.Arena[i] += delta
	}
	for i := range pr.mat.pad {
		pr.mat.pad[i] += delta
	}
}

// Clone returns an independent deep copy: fresh arena and run slice, the
// (immutable) combs shared. The batcher's stamp path uses it to hand each
// same-shape member its own plan in three allocations regardless of use
// count.
func (pr *PlanRuns) Clone() *PlanRuns {
	out := &PlanRuns{
		Arena: append([]int(nil), pr.Arena...),
		Runs:  append([]BlockRun(nil), pr.Runs...),
	}
	return out
}

// MergePlanRuns concatenates run-backed plans (nil and empty entries
// skipped) into one independent plan: arenas are copied into a single new
// arena and run offsets rebased, so mutating the merged plan (e.g.
// OffsetTasks) never touches the inputs. Cost is additive, and the merged
// expansion order is the inputs' expansion orders in sequence — exactly
// the legacy MergePlans contract, without expanding anything.
func MergePlanRuns(prs ...*PlanRuns) *PlanRuns {
	tasks, runs := 0, 0
	for _, pr := range prs {
		if pr != nil {
			tasks += len(pr.Arena)
			runs += len(pr.Runs)
		}
	}
	out := &PlanRuns{
		Arena: make([]int, 0, tasks),
		Runs:  make([]BlockRun, 0, runs),
	}
	for _, pr := range prs {
		if pr == nil {
			continue
		}
		base := len(out.Arena)
		out.Arena = append(out.Arena, pr.Arena...)
		for _, r := range pr.Runs {
			r.Off += base
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}
