// Package core defines the data model of the SLADE task-decomposition
// problem: task bins, problem instances, decomposition plans, and the
// reliability arithmetic shared by every solver.
//
// The model follows Section 3 of "SLADE: A Smart Large-Scale Task Decomposer
// in Crowdsourcing" (Tong et al.). A large-scale crowdsourcing task is a set
// of n independent binary atomic tasks. An l-cardinality task bin
// b_l = <l, r_l, c_l> batches up to l distinct atomic tasks, gives each a
// confidence r_l (probability a worker answers it correctly), and costs c_l
// per use. The reliability of an atomic task assigned to a set of bins is
//
//	Rel = 1 - Π (1 - r_|β|)
//
// and the SLADE problem asks for the cheapest multiset of bin uses (with a
// placement of tasks into bins) such that every task's reliability meets its
// threshold.
package core

import (
	"fmt"
	"math"
	"sort"
)

// TaskBin is an l-cardinality task bin: a container for up to Cardinality
// distinct atomic tasks that one crowd worker completes in a single batch.
type TaskBin struct {
	// Cardinality is the maximum number of distinct atomic tasks the bin
	// can hold (l in the paper). Must be >= 1.
	Cardinality int `json:"cardinality"`
	// Confidence is the average probability r_l that a worker correctly
	// completes each atomic task in the bin. Must lie strictly in (0, 1):
	// r_l = 0 contributes nothing and r_l = 1 makes the covering problem
	// degenerate (its log-weight is infinite).
	Confidence float64 `json:"confidence"`
	// Cost is the incentive cost c_l paid for one use of the bin. Must be
	// positive.
	Cost float64 `json:"cost"`
}

// Weight returns the transformed per-task reliability contribution
// w_l = -ln(1 - r_l) from Eq. (2) of the paper. Assigning a task to this bin
// adds Weight to the task's transformed reliability mass.
func (b TaskBin) Weight() float64 {
	return -math.Log1p(-b.Confidence)
}

// PerTaskCost returns c_l / l, the average incentive cost per atomic task
// when the bin is filled to capacity.
func (b TaskBin) PerTaskCost() float64 {
	return b.Cost / float64(b.Cardinality)
}

// Validate reports whether the bin's fields are in their legal domains.
func (b TaskBin) Validate() error {
	if b.Cardinality < 1 {
		return fmt.Errorf("core: bin cardinality %d < 1", b.Cardinality)
	}
	if !(b.Confidence > 0 && b.Confidence < 1) {
		return fmt.Errorf("core: bin confidence %v outside (0,1)", b.Confidence)
	}
	if math.IsNaN(b.Cost) || b.Cost <= 0 {
		return fmt.Errorf("core: bin cost %v must be positive", b.Cost)
	}
	return nil
}

// BinSet is the menu B = {b_1, ..., b_m} of available task bins, with at most
// one bin per cardinality, ordered by ascending cardinality. The zero value
// is an empty menu.
type BinSet struct {
	bins []TaskBin
}

// NewBinSet builds a BinSet from the given bins. It validates every bin,
// rejects duplicate cardinalities, and sorts by cardinality.
func NewBinSet(bins []TaskBin) (BinSet, error) {
	out := make([]TaskBin, len(bins))
	copy(out, bins)
	sort.Slice(out, func(i, j int) bool { return out[i].Cardinality < out[j].Cardinality })
	for i, b := range out {
		if err := b.Validate(); err != nil {
			return BinSet{}, err
		}
		if i > 0 && out[i-1].Cardinality == b.Cardinality {
			return BinSet{}, fmt.Errorf("core: duplicate bin cardinality %d", b.Cardinality)
		}
	}
	return BinSet{bins: out}, nil
}

// MustBinSet is NewBinSet that panics on error; intended for tests and
// statically known menus.
func MustBinSet(bins []TaskBin) BinSet {
	bs, err := NewBinSet(bins)
	if err != nil {
		panic(err)
	}
	return bs
}

// Len returns the number of distinct bins m = |B| in the menu.
func (s BinSet) Len() int { return len(s.bins) }

// Bins returns a copy of the menu ordered by ascending cardinality.
func (s BinSet) Bins() []TaskBin {
	out := make([]TaskBin, len(s.bins))
	copy(out, s.bins)
	return out
}

// At returns the i-th bin in ascending-cardinality order (0-based).
func (s BinSet) At(i int) TaskBin { return s.bins[i] }

// ByCardinality returns the bin with the given cardinality, if present.
func (s BinSet) ByCardinality(l int) (TaskBin, bool) {
	i := sort.Search(len(s.bins), func(i int) bool { return s.bins[i].Cardinality >= l })
	if i < len(s.bins) && s.bins[i].Cardinality == l {
		return s.bins[i], true
	}
	return TaskBin{}, false
}

// MaxCardinality returns the largest cardinality in the menu, or 0 if empty.
func (s BinSet) MaxCardinality() int {
	if len(s.bins) == 0 {
		return 0
	}
	return s.bins[len(s.bins)-1].Cardinality
}

// MinWeight returns the smallest transformed weight min_l -ln(1-r_l) over
// the menu, or +Inf if the menu is empty. It bounds the depth of any
// combination enumeration: no task ever needs more than ceil(θ/MinWeight)
// bin assignments... every bin contributes at least MinWeight.
func (s BinSet) MinWeight() float64 {
	w := math.Inf(1)
	for _, b := range s.bins {
		if bw := b.Weight(); bw < w {
			w = bw
		}
	}
	return w
}

// MaxWeight returns the largest transformed weight over the menu, or 0 if
// the menu is empty.
func (s BinSet) MaxWeight() float64 {
	w := 0.0
	for _, b := range s.bins {
		if bw := b.Weight(); bw > w {
			w = bw
		}
	}
	return w
}

// Truncate returns the sub-menu of bins with cardinality at most maxCard.
// It is used by the |B| parameter sweeps of the evaluation (Fig. 6e–6h).
func (s BinSet) Truncate(maxCard int) BinSet {
	i := sort.Search(len(s.bins), func(i int) bool { return s.bins[i].Cardinality > maxCard })
	out := make([]TaskBin, i)
	copy(out, s.bins[:i])
	return BinSet{bins: out}
}

// MinConfidence returns the smallest confidence in the menu, or 0 if empty.
func (s BinSet) MinConfidence() float64 {
	if len(s.bins) == 0 {
		return 0
	}
	r := 1.0
	for _, b := range s.bins {
		if b.Confidence < r {
			r = b.Confidence
		}
	}
	return r
}

// Validate re-checks every bin and the uniqueness/order invariants. A BinSet
// produced by NewBinSet always validates; this is for decoded JSON.
func (s BinSet) Validate() error {
	for i, b := range s.bins {
		if err := b.Validate(); err != nil {
			return err
		}
		if i > 0 && s.bins[i-1].Cardinality >= b.Cardinality {
			return fmt.Errorf("core: bins out of order at index %d", i)
		}
	}
	return nil
}

// Theta converts a reliability threshold t in [0,1) to its transformed
// demand θ = -ln(1-t) from Eq. (2). Theta(0) = 0; Theta is strictly
// increasing and unbounded as t approaches 1.
func Theta(t float64) float64 {
	return -math.Log1p(-t)
}

// ThresholdFromTheta is the inverse of Theta: t = 1 - e^{-θ}.
func ThresholdFromTheta(theta float64) float64 {
	return -math.Expm1(-theta)
}
