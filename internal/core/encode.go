package core

import (
	"bufio"
	"io"
	"strconv"
)

// This file holds the streaming JSON encoders for plans. MarshalJSON
// materializes a run-backed plan into []BinUse before encoding — fine for
// small plans, but a million-task plan pays O(assignments) memory for a
// response body that is written out linearly anyway. The encoders here
// stream the identical bytes straight off EachUse: full-block uses encode
// from arena windows, padded uses from the pooled scratch, and the only
// buffers are one bufio.Writer and one small number scratch — O(runs)
// server memory regardless of plan size.

// encodeBufSize is the bufio chunk the streaming encoders write through.
const encodeBufSize = 32 << 10

// EncodeJSON writes the plan's wire form — exactly the bytes MarshalJSON
// produces ({"uses":null} for an empty plan, nil task lists as null) —
// without materializing a run-backed plan. The equivalence is pinned byte
// for byte by TestEncodeJSONMatchesMarshal.
func (p *Plan) EncodeJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, encodeBufSize)
	bw.WriteString(`{"uses":`) // bufio errors are sticky; Flush reports them
	if err := p.encodeUses(bw); err != nil {
		return err
	}
	bw.WriteByte('}')
	return bw.Flush()
}

// EncodeUses writes the bare uses array — the bytes json.Marshal produces
// for Materialized() (null for a plan whose materialized view is nil) —
// for callers that splice the plan into a larger JSON document without
// the {"uses":...} wrapper.
func (p *Plan) EncodeUses(w io.Writer) error {
	bw := bufio.NewWriterSize(w, encodeBufSize)
	if err := p.encodeUses(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeUsesNDJSON writes one bin use per line, each line byte-identical
// to the standalone json.Marshal of that BinUse, with no surrounding
// array. An empty plan writes nothing. This is the content-negotiated
// application/x-ndjson form of the plan body.
func (p *Plan) EncodeUsesNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, encodeBufSize)
	var scratch []byte
	err := p.EachUse(func(card int, tasks []int) error {
		encodeUse(bw, &scratch, card, tasks)
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// encodeUses writes the value of the "uses" field: null when the
// materialized view would be nil (legacy plans with a nil Uses slice,
// run-backed plans with zero uses), otherwise the streamed array.
func (p *Plan) encodeUses(bw *bufio.Writer) error {
	if p.runs != nil {
		if p.runs.NumUses() == 0 {
			_, err := bw.WriteString("null")
			return err
		}
	} else if p.Uses == nil {
		_, err := bw.WriteString("null")
		return err
	}
	bw.WriteByte('[')
	first := true
	var scratch []byte
	err := p.EachUse(func(card int, tasks []int) error {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
		// bufio errors are sticky, so the last write's error aborts the
		// iteration as soon as the underlying writer fails (a
		// disconnected HTTP client, say) instead of streaming the rest
		// of a million-use plan into a dead pipe.
		return encodeUse(bw, &scratch, card, tasks)
	})
	if err != nil {
		return err
	}
	return bw.WriteByte(']')
}

// encodeUse writes one {"cardinality":N,"tasks":[...]} object and
// returns the (sticky) writer error. A nil tasks slice encodes as null,
// matching encoding/json's treatment of the legacy form's nil slices.
func encodeUse(bw *bufio.Writer, scratch *[]byte, card int, tasks []int) error {
	bw.WriteString(`{"cardinality":`)
	*scratch = strconv.AppendInt((*scratch)[:0], int64(card), 10)
	bw.Write(*scratch)
	bw.WriteString(`,"tasks":`)
	if tasks == nil {
		_, err := bw.WriteString(`null}`)
		return err
	}
	bw.WriteByte('[')
	for i, t := range tasks {
		if i > 0 {
			bw.WriteByte(',')
		}
		*scratch = strconv.AppendInt((*scratch)[:0], int64(t), 10)
		bw.Write(*scratch)
	}
	_, err := bw.WriteString(`]}`)
	return err
}
