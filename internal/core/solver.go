package core

// Solver is the interface shared by every SLADE algorithm in this
// repository: Greedy (Algorithm 1), OPQ-Based (Algorithm 3), OPQ-Extended
// (Algorithm 5), the CIP baseline (Section 4.3), and the exact solvers used
// in tests.
type Solver interface {
	// Name identifies the algorithm in experiment output ("Greedy",
	// "OPQ-Based", "Baseline", ...).
	Name() string
	// Solve returns a feasible decomposition plan for the instance. The
	// returned plan must pass Plan.Validate against the same instance.
	Solve(in *Instance) (*Plan, error)
}

// SolverFunc adapts a function to the Solver interface.
type SolverFunc struct {
	// SolverName is returned by Name.
	SolverName string
	// Fn computes the plan.
	Fn func(in *Instance) (*Plan, error)
}

// Name implements Solver.
func (s SolverFunc) Name() string { return s.SolverName }

// Solve implements Solver.
func (s SolverFunc) Solve(in *Instance) (*Plan, error) { return s.Fn(in) }
