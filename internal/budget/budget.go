// Package budget solves the dual of the SLADE problem: instead of
// minimizing cost subject to a reliability threshold, it maximizes the
// uniform reliability achievable within a fixed incentive budget. Project
// owners usually start from a budget ("we have $500 for this screening
// round"), so this is the API a deployment asks first; it is answered by
// inverting the OPQ-Based cost function with a bisection over thresholds.
//
// Cost as a function of the threshold t is a step function (combinations
// change discretely), non-decreasing up to block-remainder effects, so the
// bisection is followed by a downward verification sweep.
package budget

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/opq"
)

// Options configures the search.
type Options struct {
	// MaxThreshold caps the searched reliability (default 0.999; higher
	// values blow up the transformed demand -ln(1-t)).
	MaxThreshold float64
	// Tolerance is the threshold resolution of the bisection
	// (default 1e-4).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxThreshold == 0 {
		o.MaxThreshold = 0.999
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-4
	}
	return o
}

// Result is the outcome of a budget search.
type Result struct {
	// Threshold is the highest uniform reliability found within budget.
	Threshold float64
	// Cost is the OPQ-Based plan cost at that threshold.
	Cost float64
	// Plan is the materialized decomposition plan.
	Plan *core.Plan
}

// MaxReliability finds the highest uniform reliability threshold t such
// that the OPQ-Based decomposition of n tasks over the menu costs at most
// the budget, and returns the corresponding plan. It errors when even the
// cheapest nonzero coverage exceeds the budget.
func MaxReliability(bins core.BinSet, n int, budget float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("budget: non-positive task count %d", n)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("budget: non-positive budget %v", budget)
	}

	cost := func(t float64) (float64, error) {
		q, err := opq.Build(bins, t)
		if err != nil {
			return 0, err
		}
		return opq.PlanCost(q, n)
	}

	// Establish feasibility at the bottom of the search range.
	lo := o.Tolerance
	cLo, err := cost(lo)
	if err != nil {
		return nil, err
	}
	if cLo > budget {
		return nil, fmt.Errorf("budget: $%v cannot cover %d tasks even at t=%v (needs $%v)",
			budget, n, lo, cLo)
	}
	hi := o.MaxThreshold
	if cHi, err := cost(hi); err == nil && cHi <= budget {
		lo = hi // the whole range is affordable
	}

	for hi-lo > o.Tolerance {
		mid := (lo + hi) / 2
		c, err := cost(mid)
		if err != nil {
			return nil, err
		}
		if c <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}

	// Cost is a step function and not perfectly monotone at block
	// remainders; walk down until the materialized plan is affordable.
	t := lo
	for ; t > 0; t -= o.Tolerance {
		c, err := cost(t)
		if err != nil {
			return nil, err
		}
		if c <= budget {
			break
		}
	}
	if t <= 0 {
		return nil, fmt.Errorf("budget: no affordable threshold found")
	}

	q, err := opq.Build(bins, t)
	if err != nil {
		return nil, err
	}
	tasks := make([]int, n)
	for i := range tasks {
		tasks[i] = i
	}
	plan, err := opq.SolveWithQueue(q, tasks)
	if err != nil {
		return nil, err
	}
	c, err := plan.Cost(bins)
	if err != nil {
		return nil, err
	}
	return &Result{Threshold: t, Cost: c, Plan: plan}, nil
}

// CostCurve evaluates the OPQ-Based cost of n tasks at each threshold —
// the planning curve a project owner reads budget/quality trade-offs from.
func CostCurve(bins core.BinSet, n int, thresholds []float64) ([]float64, error) {
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		q, err := opq.Build(bins, t)
		if err != nil {
			return nil, fmt.Errorf("budget: t=%v: %w", t, err)
		}
		c, err := opq.PlanCost(q, n)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
