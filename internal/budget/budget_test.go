package budget

import (
	"math"
	"testing"

	"repro/internal/binset"
	"repro/internal/core"
)

func table1() core.BinSet { return binset.Table1() }

func TestMaxReliabilityRespectsBudget(t *testing.T) {
	for _, budget := range []float64{9, 15, 20, 100} {
		res, err := MaxReliability(table1(), 100, budget, Options{})
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if res.Cost > budget+1e-9 {
			t.Errorf("budget %v: plan costs %v", budget, res.Cost)
		}
		in, err := core.NewHomogeneous(table1(), 100, res.Threshold)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Plan.Validate(in); err != nil {
			t.Errorf("budget %v: plan infeasible at claimed threshold: %v", budget, err)
		}
	}
}

func TestMaxReliabilityMonotoneInBudget(t *testing.T) {
	prev := -1.0
	for _, budget := range []float64{9, 12, 16, 32, 64} {
		res, err := MaxReliability(table1(), 100, budget, Options{})
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if res.Threshold < prev-1e-6 {
			t.Errorf("threshold fell from %v to %v as budget rose to %v", prev, res.Threshold, budget)
		}
		prev = res.Threshold
	}
}

func TestMaxReliabilityHighBudgetSaturates(t *testing.T) {
	res, err := MaxReliability(table1(), 10, 1e6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold < 0.99 {
		t.Errorf("unlimited budget reached only t=%v", res.Threshold)
	}
}

func TestMaxReliabilityInsufficientBudget(t *testing.T) {
	// 10,000 tasks on a menu whose cheapest bin costs $0.10: a $1 budget
	// cannot even touch each task once.
	if _, err := MaxReliability(table1(), 10_000, 1, Options{}); err == nil {
		t.Error("hopeless budget accepted")
	}
}

func TestMaxReliabilityRejectsBadInput(t *testing.T) {
	if _, err := MaxReliability(table1(), 0, 10, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MaxReliability(table1(), 10, 0, Options{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCostCurveMonotoneOverall(t *testing.T) {
	ts := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.97, 0.99}
	curve, err := CostCurve(table1(), 300, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints must be strictly ordered; interior steps may be flat.
	if curve[len(curve)-1] <= curve[0] {
		t.Errorf("cost curve not increasing: %v", curve)
	}
	for i, c := range curve {
		if c <= 0 {
			t.Errorf("non-positive cost %v at t=%v", c, ts[i])
		}
	}
}

func TestBudgetJellyMenu(t *testing.T) {
	menu := binset.MustJelly(20)
	res, err := MaxReliability(menu, 10_000, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// From the Figure-6a reproduction, $400 buys ≈ t=0.95 on Jelly.
	if res.Threshold < 0.90 || res.Threshold > 0.99 {
		t.Errorf("threshold %v outside the expected band for $400", res.Threshold)
	}
	if math.Abs(res.Cost-400) > 100 {
		t.Errorf("cost %v far from the budget ceiling", res.Cost)
	}
}
