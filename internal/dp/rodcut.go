// Package dp collects the exact polynomial-time and exponential-time solvers
// that frame the SLADE problem's complexity analysis (Section 4.2 of the
// paper):
//
//   - RodCutting solves the relaxed SLADE variant (every bin confidence
//     meets the largest threshold) exactly in O(n·m), via the classic
//     rod-cutting dynamic program the paper cites.
//   - SolveUKP solves the Unbounded Knapsack Problem, the source of the
//     NP-hardness reduction of Theorem 1; tests replay the reduction.
//   - SolveExact finds the true optimal SLADE plan for tiny instances by
//     iterative-deepening search over residual states; it anchors the
//     approximation-quality tests.
package dp

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// RodCutting solves the relaxed SLADE variant exactly: when every bin's
// confidence is at least the largest task threshold (Instance.Relaxed),
// each task needs exactly one bin slot, and the minimum cost of covering n
// slots from the menu is the rod-cutting recurrence
//
//	cost(0) = 0
//	cost(k) = min_l { c_l + cost(max(0, k-l)) }
//
// It returns an error when the instance is not relaxed.
func RodCutting(in *core.Instance) (*core.Plan, error) {
	if !in.Relaxed() {
		return nil, fmt.Errorf("dp: instance is not relaxed (min confidence %v < max threshold %v)",
			in.Bins().MinConfidence(), in.MaxThreshold())
	}
	n := in.N()
	if n == 0 {
		return &core.Plan{}, nil
	}
	// Tasks with a zero threshold need no slot at all.
	var need []int
	for i := 0; i < n; i++ {
		if in.Theta(i) > 0 {
			need = append(need, i)
		}
	}
	k := len(need)
	if k == 0 {
		return &core.Plan{}, nil
	}

	bins := in.Bins().Bins()
	cost := make([]float64, k+1)
	choice := make([]int, k+1) // bin index chosen at each prefix length
	for i := 1; i <= k; i++ {
		cost[i] = math.Inf(1)
		choice[i] = -1
		for bi, b := range bins {
			rest := i - b.Cardinality
			if rest < 0 {
				rest = 0
			}
			if c := b.Cost + cost[rest]; c < cost[i] {
				cost[i] = c
				choice[i] = bi
			}
		}
	}

	plan := &core.Plan{}
	for i := k; i > 0; {
		b := bins[choice[i]]
		take := b.Cardinality
		if take > i {
			take = i
		}
		use := core.BinUse{Cardinality: b.Cardinality}
		use.Tasks = append(use.Tasks, need[i-take:i]...)
		plan.Uses = append(plan.Uses, use)
		i -= take
	}
	return plan, nil
}

// RodCuttingCost returns only the optimal cost of the relaxed variant for a
// task count, without materializing a plan. It is the O(n·m) table of the
// same recurrence and exists for capacity planning and tests.
func RodCuttingCost(bins core.BinSet, n int) (float64, error) {
	if bins.Len() == 0 {
		return 0, fmt.Errorf("dp: empty bin menu")
	}
	if n <= 0 {
		return 0, nil
	}
	menu := bins.Bins()
	cost := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		cost[i] = math.Inf(1)
		for _, b := range menu {
			rest := i - b.Cardinality
			if rest < 0 {
				rest = 0
			}
			if c := b.Cost + cost[rest]; c < cost[i] {
				cost[i] = c
			}
		}
	}
	return cost[n], nil
}
