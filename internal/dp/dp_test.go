package dp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/hetero"
	"repro/internal/opq"
)

func table1() core.BinSet {
	return core.MustBinSet([]core.TaskBin{
		{Cardinality: 1, Confidence: 0.90, Cost: 0.10},
		{Cardinality: 2, Confidence: 0.85, Cost: 0.18},
		{Cardinality: 3, Confidence: 0.80, Cost: 0.24},
	})
}

// ---------- Rod cutting (relaxed variant, Section 4.2) ----------

func TestRodCuttingRelaxedOnly(t *testing.T) {
	in := core.MustHomogeneous(table1(), 4, 0.95) // 0.95 > min confidence 0.8
	if _, err := RodCutting(in); err == nil {
		t.Error("RodCutting accepted a non-relaxed instance")
	}
}

func TestRodCuttingOptimal(t *testing.T) {
	// t = 0.75 ≤ every confidence → relaxed. Menu costs per slot:
	// b1: 0.10, b2: 0.09, b3: 0.08 → n=6 optimally uses two b3 (0.48).
	in := core.MustHomogeneous(table1(), 6, 0.75)
	p, err := RodCutting(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if got := p.MustCost(in.Bins()); math.Abs(got-0.48) > 1e-12 {
		t.Errorf("cost = %v, want 0.48", got)
	}
}

func TestRodCuttingRemainders(t *testing.T) {
	// n = 4: best is b3 + b1 (0.34) — cheaper than 2×b2 (0.36).
	in := core.MustHomogeneous(table1(), 4, 0.75)
	p, err := RodCutting(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustCost(in.Bins()); math.Abs(got-0.34) > 1e-12 {
		t.Errorf("cost = %v, want 0.34", got)
	}
}

func TestRodCuttingZeroAndEmpty(t *testing.T) {
	in := core.MustHomogeneous(table1(), 0, 0.75)
	p, err := RodCutting(in)
	if err != nil || p.NumUses() != 0 {
		t.Errorf("empty instance: %v, %v", p, err)
	}
	in2 := core.MustHomogeneous(table1(), 3, 0)
	p2, err := RodCutting(in2)
	if err != nil || p2.NumUses() != 0 {
		t.Errorf("zero-threshold instance: %v, %v", p2, err)
	}
}

// TestRodCuttingMatchesBruteForce cross-checks the DP against exhaustive
// search over use counts for small n.
func TestRodCuttingMatchesBruteForce(t *testing.T) {
	bins := table1()
	for n := 1; n <= 12; n++ {
		got, err := RodCuttingCost(bins, n)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCover(bins, n)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: DP cost %v, brute force %v", n, got, want)
		}
	}
}

// bruteCover exhaustively minimizes cost of covering n slots.
func bruteCover(bins core.BinSet, n int) float64 {
	best := math.Inf(1)
	menu := bins.Bins()
	var rec func(left int, cost float64)
	rec = func(left int, cost float64) {
		if cost >= best {
			return
		}
		if left <= 0 {
			best = cost
			return
		}
		for _, b := range menu {
			rec(left-b.Cardinality, cost+b.Cost)
		}
	}
	rec(n, 0)
	return best
}

func TestRodCuttingCostEdge(t *testing.T) {
	if _, err := RodCuttingCost(core.BinSet{}, 5); err == nil {
		t.Error("empty menu accepted")
	}
	c, err := RodCuttingCost(table1(), 0)
	if err != nil || c != 0 {
		t.Errorf("RodCuttingCost(0) = %v, %v", c, err)
	}
}

// ---------- UKP and the Theorem-1 reduction ----------

func TestSolveUKPKnown(t *testing.T) {
	items := []UKPItem{{Weight: 3, Value: 4}, {Weight: 5, Value: 7}, {Weight: 8, Value: 12}}
	v, counts, err := SolveUKP(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 24 { // two of item 3 (8+8=16 weight, 24 value)
		t.Errorf("value = %d, want 24", v)
	}
	totalW, totalV := 0, 0
	for i, k := range counts {
		totalW += k * items[i].Weight
		totalV += k * items[i].Value
	}
	if totalW > 16 || totalV != v {
		t.Errorf("reconstruction inconsistent: weight %d value %d", totalW, totalV)
	}
}

func TestSolveUKPRejectsBadItems(t *testing.T) {
	if _, _, err := SolveUKP([]UKPItem{{Weight: 0, Value: 1}}, 5); err == nil {
		t.Error("zero weight accepted")
	}
	if _, _, err := SolveUKP([]UKPItem{{Weight: 1, Value: 0}}, 5); err == nil {
		t.Error("zero value accepted")
	}
	if _, _, err := SolveUKP([]UKPItem{{Weight: 1, Value: 1}}, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestUKPDecision(t *testing.T) {
	items := []UKPItem{{Weight: 2, Value: 3}}
	yes, err := UKPDecision(items, 6, 9)
	if err != nil || !yes {
		t.Errorf("decision (6,9) = %v, %v; want yes", yes, err)
	}
	no, err := UKPDecision(items, 6, 10)
	if err != nil || no {
		t.Errorf("decision (6,10) = %v, %v; want no", no, err)
	}
}

// TestTheorem1Reduction replays the NP-hardness reduction: a UKP decision
// instance is a yes-instance iff the reduced SLADE instance admits a plan of
// cost ≤ W. The optimal SLADE cost for the single reduced task equals the
// minimum weight achieving value ≥ V.
func TestTheorem1Reduction(t *testing.T) {
	items := []UKPItem{{Weight: 3, Value: 4}, {Weight: 5, Value: 7}}
	const V = 11
	in, err := ReduceUKPToSLADE(items, V)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 1 {
		t.Fatalf("reduced instance has %d tasks, want 1", in.N())
	}
	// Check bin parameters: c_i = w_i, r_i = 1 - e^{-v_i}.
	for i, b := range in.Bins().Bins() {
		if b.Cost != float64(items[i].Weight) {
			t.Errorf("bin %d cost = %v, want %v", i, b.Cost, items[i].Weight)
		}
		wantConf := 1 - math.Exp(-float64(items[i].Value))
		if math.Abs(b.Confidence-wantConf) > 1e-9 {
			t.Errorf("bin %d confidence = %v, want %v", i, b.Confidence, wantConf)
		}
	}
	// Exact minimal SLADE cost via exact search.
	got, err := SolveExactCost(in)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum weight with Σ v ≥ 11: items (4,7) → one of each: w=8 v=11. ✔
	if math.Abs(got-8) > 1e-6 {
		t.Errorf("optimal SLADE cost = %v, want 8", got)
	}
	// Decision equivalence at several budgets.
	for _, budget := range []int{7, 8, 12} {
		yes, err := UKPDecision(items, budget, V)
		if err != nil {
			t.Fatal(err)
		}
		if sladeYes := got <= float64(budget)+1e-9; yes != sladeYes {
			t.Errorf("budget %d: UKP=%v SLADE=%v", budget, yes, sladeYes)
		}
	}
}

// ---------- Exact solver ----------

func TestExample4Optimal(t *testing.T) {
	// Example 4 claims P2 (cost 0.66) is optimal for 4 tasks at t = 0.95.
	in := core.MustHomogeneous(table1(), 4, 0.95)
	got, err := SolveExactCost(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.66) > 1e-9 {
		t.Errorf("exact optimal = %v, want 0.66", got)
	}
}

func TestExactRejectsLarge(t *testing.T) {
	in := core.MustHomogeneous(table1(), 50, 0.9)
	if _, err := SolveExactCost(in); err == nil {
		t.Error("exact solver accepted a large instance")
	}
}

func TestExactZeroTasks(t *testing.T) {
	in := core.MustHomogeneous(table1(), 0, 0.9)
	c, err := SolveExactCost(in)
	if err != nil || c != 0 {
		t.Errorf("SolveExactCost(empty) = %v, %v", c, err)
	}
}

// TestCorollary1AgainstExact verifies that at n = OPQ1.LCM the OPQ-Based
// plan cost equals the exact optimum (Lemma 3 / Corollary 1).
func TestCorollary1AgainstExact(t *testing.T) {
	q, err := opq.Build(table1(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	n := int(q.Elems[0].LCM) // 3
	in := core.MustHomogeneous(table1(), n, 0.95)
	opqCost, err := opq.PlanCost(q, n)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveExactCost(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opqCost-exact) > 1e-9 {
		t.Errorf("OPQ cost %v ≠ exact optimum %v at n = LCM", opqCost, exact)
	}
}

// TestApproximationsNeverBeatExact is the fundamental sanity property: on
// random tiny instances every approximation algorithm costs at least the
// exact optimum, and the exact optimum is feasible to reach.
func TestApproximationsNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		bins := smallMenu(rng)
		n := 1 + rng.Intn(5)
		tt := 0.8 + 0.19*rng.Float64()
		in := core.MustHomogeneous(bins, n, tt)
		exact, err := SolveExactCost(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pg, err := greedy.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if cg := pg.MustCost(bins); cg < exact-1e-9 {
			t.Errorf("trial %d: greedy %v beats exact %v", trial, cg, exact)
		}
		ph, err := hetero.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if ch := ph.MustCost(bins); ch < exact-1e-9 {
			t.Errorf("trial %d: OPQ-Extended %v beats exact %v", trial, ch, exact)
		}
	}
}

func smallMenu(rng *rand.Rand) core.BinSet {
	m := 1 + rng.Intn(3)
	bins := make([]core.TaskBin, 0, m)
	conf := 0.88 + 0.1*rng.Float64()
	cost := 0.1
	for l := 1; l <= m; l++ {
		bins = append(bins, core.TaskBin{Cardinality: l, Confidence: conf, Cost: cost})
		conf -= 0.05
		cost += 0.07
	}
	return core.MustBinSet(bins)
}
