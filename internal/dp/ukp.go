package dp

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// UKPItem is one item of an Unbounded Knapsack instance: it may be used any
// number of times.
type UKPItem struct {
	// Weight is the item's weight (positive integer).
	Weight int
	// Value is the item's value (positive integer).
	Value int
}

// SolveUKP solves the Unbounded Knapsack Problem exactly: maximize total
// value subject to total weight ≤ capacity, items reusable. It returns the
// optimal value and the multiplicity of each item in one optimal solution.
// Classic O(capacity × items) dynamic program.
func SolveUKP(items []UKPItem, capacity int) (int, []int, error) {
	for i, it := range items {
		if it.Weight <= 0 || it.Value <= 0 {
			return 0, nil, fmt.Errorf("dp: item %d has non-positive weight or value", i)
		}
	}
	if capacity < 0 {
		return 0, nil, fmt.Errorf("dp: negative capacity %d", capacity)
	}
	best := make([]int, capacity+1)
	pick := make([]int, capacity+1)
	for w := range pick {
		pick[w] = -1
	}
	for w := 1; w <= capacity; w++ {
		best[w] = best[w-1]
		pick[w] = pick[w-1]
		for i, it := range items {
			if it.Weight <= w {
				if v := best[w-it.Weight] + it.Value; v > best[w] {
					best[w] = v
					pick[w] = i
				}
			}
		}
	}
	counts := make([]int, len(items))
	w := capacity
	for w > 0 && pick[w] >= 0 {
		// pick[w] == pick[w-1] with same value means no item ends here;
		// walk left until an item boundary.
		if best[w] == best[w-1] {
			w--
			continue
		}
		i := pick[w]
		counts[i]++
		w -= items[i].Weight
	}
	return best[capacity], counts, nil
}

// UKPDecision answers the decision version used in Theorem 1: does a
// multiset of items exist with total weight ≤ maxWeight and total value
// ≥ minValue?
func UKPDecision(items []UKPItem, maxWeight, minValue int) (bool, error) {
	v, _, err := SolveUKP(items, maxWeight)
	if err != nil {
		return false, err
	}
	return v >= minValue, nil
}

// ReduceUKPToSLADE builds the SLADE instance of the Theorem-1 reduction from
// a UKP instance: one task bin per item with cost c_i = w_i and confidence
// r_i = 1 - e^{-v_i}, and a single atomic task with threshold
// t = 1 - e^{-V}. A decomposition plan of cost ≤ W exists iff the UKP
// decision (W, V) is a yes-instance.
func ReduceUKPToSLADE(items []UKPItem, minValue int) (*core.Instance, error) {
	bins := make([]core.TaskBin, len(items))
	for i, it := range items {
		bins[i] = core.TaskBin{
			Cardinality: i + 1, // distinct cardinalities keep the menu well-formed
			Confidence:  1 - expNeg(float64(it.Value)),
			Cost:        float64(it.Weight),
		}
	}
	bs, err := core.NewBinSet(bins)
	if err != nil {
		return nil, err
	}
	return core.NewHeterogeneous(bs, []float64{1 - expNeg(float64(minValue))})
}

// expNeg returns e^{-x} clamped to keep derived confidences strictly inside
// (0,1) for the instance validators.
func expNeg(x float64) float64 {
	v := math.Exp(-x)
	if v <= 0 {
		v = 1e-15
	}
	if v >= 1 {
		v = 1 - 1e-15
	}
	return v
}
