package dp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/greedy"
)

// ExactLimits bounds the instance sizes SolveExactCost accepts. The solver
// is exponential (the SLADE problem is NP-hard, Theorem 1); it exists to
// anchor approximation-quality tests on tiny instances.
const (
	maxExactTasks = 8
	maxExactBins  = 4
)

// SolveExactCost returns the cost of an optimal decomposition plan by
// branch-and-bound over bin-use count vectors {τ_l}, checking exact
// assignability of each candidate vector. Only tiny instances are accepted.
func SolveExactCost(in *core.Instance) (float64, error) {
	n := in.N()
	if n == 0 {
		return 0, nil
	}
	if n > maxExactTasks || in.Bins().Len() > maxExactBins {
		return 0, fmt.Errorf("dp: instance too large for exact search (n=%d, m=%d)", n, in.Bins().Len())
	}
	bins := in.Bins().Bins()
	m := len(bins)
	weights := make([]float64, m)
	for i, b := range bins {
		weights[i] = b.Weight()
	}

	demands := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if th := in.Theta(i); th > 0 {
			demands = append(demands, th)
		}
	}
	if len(demands) == 0 {
		return 0, nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(demands)))
	totalDemand := 0.0
	for _, d := range demands {
		totalDemand += d
	}

	// Upper bound from the greedy heuristic seeds the pruning.
	gp, err := greedy.Solve(in)
	if err != nil {
		return 0, err
	}
	best := gp.MustCost(in.Bins())

	e := &exactSearch{
		bins:    bins,
		weights: weights,
		demands: demands,
		total:   totalDemand,
		best:    best,
	}
	counts := make([]int, m)
	e.branch(0, 0, counts)
	return e.best, nil
}

// exactSearch carries the branch-and-bound state.
type exactSearch struct {
	bins    []core.TaskBin
	weights []float64
	demands []float64 // descending
	total   float64
	best    float64
}

// branch enumerates τ_bi counts for bins bi.. with accumulated cost.
func (e *exactSearch) branch(bi int, cost float64, counts []int) {
	if cost >= e.best-1e-12 {
		return
	}
	if bi == len(e.bins) {
		if e.assignable(counts) {
			e.best = cost
		}
		return
	}
	maxUses := int(math.Floor((e.best - cost) / e.bins[bi].Cost))
	// No point exceeding what full per-task coverage could ever need.
	perTask := int(math.Ceil(e.demands[0]/e.weights[bi])) * len(e.demands)
	if maxUses > perTask {
		maxUses = perTask
	}
	for k := 0; k <= maxUses; k++ {
		counts[bi] = k
		e.branch(bi+1, cost+float64(k)*e.bins[bi].Cost, counts)
	}
	counts[bi] = 0
}

// assignable decides whether the bin-use vector counts can cover every
// demand: each use of bin l offers l slots, a task may occupy at most one
// slot per use, and a task's occupied slots must carry mass ≥ its demand.
func (e *exactSearch) assignable(counts []int) bool {
	// Necessary aggregate check before the exponential part.
	mass := 0.0
	perTaskMax := 0.0
	for i, k := range counts {
		card := e.bins[i].Cardinality
		if card > len(e.demands) {
			card = len(e.demands)
		}
		mass += float64(k*card) * e.weights[i]
		perTaskMax += float64(k) * e.weights[i]
	}
	if mass < e.total-1e-9 || perTaskMax < e.demands[0]-1e-9 {
		return false
	}
	caps := make([]int, len(counts))
	for i, k := range counts {
		card := e.bins[i].Cardinality
		if card > len(e.demands) {
			card = len(e.demands)
		}
		caps[i] = k * card
	}
	return e.assignTask(0, counts, caps)
}

// assignTask recursively chooses, for each task, how many uses of each bin
// serve it (bounded by the use count and the remaining slot capacity).
func (e *exactSearch) assignTask(ti int, counts, caps []int) bool {
	if ti == len(e.demands) {
		return true
	}
	choice := make([]int, len(counts))
	return e.chooseBins(ti, 0, e.demands[ti], counts, caps, choice)
}

// chooseBins enumerates minimal per-bin usage vectors for task ti.
func (e *exactSearch) chooseBins(ti, bi int, need float64, counts, caps []int, choice []int) bool {
	if need <= 1e-9 {
		return e.assignTask(ti+1, counts, caps)
	}
	if bi == len(counts) {
		return false
	}
	maxK := counts[bi]
	if caps[bi] < maxK {
		maxK = caps[bi]
	}
	if lim := int(math.Ceil(need / e.weights[bi])); maxK > lim {
		maxK = lim
	}
	// Try the largest helpings first: finds feasible assignments fastest.
	for k := maxK; k >= 0; k-- {
		caps[bi] -= k
		choice[bi] = k
		if e.chooseBins(ti, bi+1, need-float64(k)*e.weights[bi], counts, caps, choice) {
			caps[bi] += k
			return true
		}
		caps[bi] += k
		choice[bi] = 0
	}
	return false
}
