package slade

import (
	"math"
	"strings"
	"testing"
)

// Tests for the facade of the extension layers: execution, budgeting,
// streaming and plan diagnostics.

func TestExecuteFacade(t *testing.T) {
	menu, err := JellyMenu(15)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewHomogeneous(menu, 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]bool, 300)
	for i := range truth {
		truth[i] = i%4 == 0
	}
	pl := NewJellyPlatform(12)
	rep, err := Execute(pl, in, plan, truth, ExecutionOptions{TopUp: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spent < rep.PlannedCost {
		t.Errorf("spent %v below planned %v", rep.Spent, rep.PlannedCost)
	}
	if rep.EmpiricalReliability < 0.9 {
		t.Errorf("empirical reliability %v too low for a 0.95 plan", rep.EmpiricalReliability)
	}
}

func TestMaxReliabilityFacade(t *testing.T) {
	res, err := MaxReliability(Table1Menu(), 100, 30, BudgetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 30+1e-9 {
		t.Errorf("cost %v above budget", res.Cost)
	}
	if res.Threshold <= 0.5 {
		t.Errorf("threshold %v suspiciously low for a generous budget", res.Threshold)
	}
}

func TestCostCurveFacade(t *testing.T) {
	curve, err := CostCurve(Table1Menu(), 100, []float64{0.8, 0.9, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 || curve[2] < curve[0] {
		t.Errorf("curve = %v", curve)
	}
}

func TestStreamPlannerFacade(t *testing.T) {
	p, err := NewStreamPlanner(Table1Menu(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockSize() != 3 {
		t.Errorf("BlockSize = %d", p.BlockSize())
	}
	if _, err := p.Add(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.EmittedTasks() != 4 {
		t.Errorf("EmittedTasks = %d", p.EmittedTasks())
	}
}

func TestAnalyzeAndCompareFacades(t *testing.T) {
	in, err := NewHomogeneous(Table1Menu(), 30, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewGreedy().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	po, err := NewOPQ().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := AnalyzePlan(in, po)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Feasible() {
		t.Error("OPQ plan reported infeasible")
	}
	cg, co := pg.MustCost(in.Bins()), po.MustCost(in.Bins())
	if co > cg+1e-9 {
		t.Errorf("OPQ cost %v above Greedy %v on the running menu", co, cg)
	}
	out, err := ComparePlans(in, map[string]*Plan{"Greedy": pg, "OPQ-Based": po})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Greedy") || !strings.Contains(out, "OPQ-Based") {
		t.Errorf("comparison output:\n%s", out)
	}
}

// TestBudgetInvertsDecompose closes the loop between the two APIs: the
// threshold MaxReliability returns must be achievable by Decompose within
// the same budget.
func TestBudgetInvertsDecompose(t *testing.T) {
	menu := Table1Menu()
	const n, budgetUSD = 60, 15.0
	res, err := MaxReliability(menu, n, budgetUSD, BudgetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewHomogeneous(menu, n, res.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := plan.Cost(menu)
	if err != nil {
		t.Fatal(err)
	}
	if cost > budgetUSD+1e-9 {
		t.Errorf("Decompose at the budgeted threshold costs %v > %v", cost, budgetUSD)
	}
	if math.Abs(cost-res.Cost) > 1e-9 {
		t.Errorf("cost mismatch: budget search %v vs direct %v", res.Cost, cost)
	}
}
