package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/opq"

	slade "repro"
)

// solveBench is the machine-readable outcome of the solve phase, written
// as JSON when -solve-json is set so CI can track the hot path's
// allocation trajectory. All measurements solve the same instance shape
// the serve smoke uses (Jelly |B|=20, t=0.9, n=10,000).
type solveBench struct {
	N int `json:"n"`
	// Cold pays Algorithm 2 (queue construction) on every op; Cached
	// solves on a prebuilt queue in compact run form — the serving
	// layer's steady-state hot path.
	ColdNsOp       float64 `json:"cold_ns_op"`
	ColdAllocsOp   int64   `json:"cold_allocs_op"`
	CachedNsOp     float64 `json:"cached_ns_op"`
	CachedAllocsOp int64   `json:"cached_allocs_op"`
	// Materialize is the cached solve plus the lazy []BinUse expansion a
	// caller pays at the JSON edge — "solve + materialize", the number
	// the regression gate watches.
	MaterializeNsOp     float64 `json:"materialize_ns_op"`
	MaterializeAllocsOp int64   `json:"materialize_allocs_op"`
	// PerUse reproduces the pre-run-representation allocation pattern
	// (one task slice per bin use) on the cached path, as the in-tree
	// baseline the improvement ratio is computed against.
	PerUseNsOp     float64 `json:"per_use_ns_op"`
	PerUseAllocsOp int64   `json:"per_use_allocs_op"`
	// AllocImprovement is PerUseAllocsOp / MaterializeAllocsOp.
	AllocImprovement float64 `json:"alloc_improvement"`
	// AllocBudget echoes the -solve-alloc-budget gate (0 = no gate).
	AllocBudget int64 `json:"alloc_budget"`
}

// runSolveBench measures the decomposition hot path with the testing
// package's benchmark driver and enforces the allocation budget: the
// cached solve+materialize pipeline failing the committed allocs/op
// budget fails the run (and CI with it).
func runSolveBench(w io.Writer, jsonPath string, allocBudget int64) error {
	const (
		n   = 10_000
		thr = 0.9
	)
	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	q, err := opq.Build(menu, thr)
	if err != nil {
		return err
	}

	bench := solveBench{N: n, AllocBudget: allocBudget}
	fmt.Fprintf(w, "solve bench (Jelly |B|=20, t=%.1f, n=%d)\n", thr, n)

	record := func(label string, nsOp *float64, allocsOp *int64, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		*nsOp = float64(res.NsPerOp())
		*allocsOp = res.AllocsPerOp()
		fmt.Fprintf(w, "  %-28s %10.0f ns/op  %6d allocs/op\n", label+":", *nsOp, *allocsOp)
	}

	record("cold (build + solve)", &bench.ColdNsOp, &bench.ColdAllocsOp, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qq, err := opq.Build(menu, thr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := opq.SolveRunsRange(qq, 0, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("cached (runs only)", &bench.CachedNsOp, &bench.CachedAllocsOp, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opq.SolveRunsRange(q, 0, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("cached solve+materialize", &bench.MaterializeNsOp, &bench.MaterializeAllocsOp, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr, err := opq.SolveRunsRange(q, 0, n)
			if err != nil {
				b.Fatal(err)
			}
			if uses := pr.Materialize(); len(uses) == 0 {
				b.Fatal("empty plan")
			}
		}
	})
	record("per-use baseline (pre-PR)", &bench.PerUseNsOp, &bench.PerUseAllocsOp, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr, err := opq.SolveRunsRange(q, 0, n)
			if err != nil {
				b.Fatal(err)
			}
			if uses := perUseExpand(pr); len(uses) == 0 {
				b.Fatal("empty plan")
			}
		}
	})

	if bench.MaterializeAllocsOp > 0 {
		bench.AllocImprovement = float64(bench.PerUseAllocsOp) / float64(bench.MaterializeAllocsOp)
		fmt.Fprintf(w, "  alloc improvement vs per-use baseline: %.1fx\n", bench.AllocImprovement)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing solve bench json: %w", err)
		}
		fmt.Fprintf(w, "  bench json written to %s\n", jsonPath)
	}
	if allocBudget > 0 && bench.MaterializeAllocsOp > allocBudget {
		return fmt.Errorf("cached solve+materialize costs %d allocs/op, over the committed budget of %d — the zero-allocation pipeline regressed",
			bench.MaterializeAllocsOp, allocBudget)
	}
	fmt.Fprintln(w, "  OK")
	return nil
}

// perUseExpand rebuilds the pre-run-representation plan form: one
// independently allocated task slice per bin use (what the solver and
// every downstream copy used to produce). Kept as the live baseline the
// solve bench measures the compact representation against.
func perUseExpand(pr *core.PlanRuns) []core.BinUse {
	var uses []core.BinUse
	_ = pr.EachUse(func(card int, tasks []int) error {
		uses = append(uses, core.BinUse{Cardinality: card, Tasks: append([]int(nil), tasks...)})
		return nil
	})
	return uses
}
