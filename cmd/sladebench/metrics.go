package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	slade "repro"
	"repro/internal/obs"
)

// metricsRoutes is every HTTP route the service registers; the smoke
// fails if /metrics is missing a per-route series for any of them.
var metricsRoutes = []string{
	"/v1/decompose", "/v1/jobs", "/v1/jobs/{id}", "/v1/admin/snapshot",
	"/v1/healthz", "/v1/stats", "/metrics",
}

// metricsFamilies is one family per instrumented pipeline stage — HTTP
// middleware, admission control, cache, batcher, solver pool, executor,
// store, and job lifecycle. The smoke checks each is declared.
var metricsFamilies = []string{
	"slade_http_requests_total",
	"slade_http_request_duration_seconds",
	"slade_admission_rejected_total",
	"slade_cache_builds_total",
	"slade_cache_build_duration_seconds",
	"slade_batch_flushes_total",
	"slade_shard_queue_wait_seconds",
	"slade_executor_bins_issued_total",
	"slade_store_op_duration_seconds",
	"slade_jobs_total",
}

// runMetricsSmoke is the CI observability gate: it boots the service
// in-process, drives one request through every HTTP route (including an
// executed run job, so the executor and store series move), scrapes
// GET /metrics, and validates the payload with the in-repo exposition
// linter — every route series and every per-stage family must be present
// and the payload must be a well-formed Prometheus 0.0.4 exposition.
func runMetricsSmoke(w io.Writer) error {
	svc := slade.NewService(slade.ServiceConfig{Store: slade.NewMemStore()})
	defer svc.Close()
	ts := httptest.NewServer(slade.NewServiceHandler(svc))
	defer ts.Close()

	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	binsJSON, err := json.Marshal(menu.Bins())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "metrics smoke test against %s\n", ts.URL)

	// One request per route; the run job also moves the executor counters.
	if _, err := timedPost(ts.URL+"/v1/decompose", fmt.Sprintf(`{"bins":%s,"n":500,"threshold":0.9}`, binsJSON)); err != nil {
		return fmt.Errorf("decompose: %w", err)
	}
	runBody := fmt.Sprintf(`{"kind":"run","bins":%s,"n":100,"threshold":0.9,"run":{"seed":1}}`, binsJSON)
	out, err := submitAndPollJob(ts.URL, runBody, 60*time.Second)
	if err != nil {
		return fmt.Errorf("run job: %w", err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+out.ID, nil)
	if err != nil {
		return err
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		return err
	} else {
		resp.Body.Close() // 409: terminal jobs don't cancel — the route series still moves
	}
	for _, route := range []string{"/v1/admin/snapshot"} {
		if _, err := timedPost(ts.URL+route, `{}`); err != nil {
			return fmt.Errorf("%s: %w", route, err)
		}
	}
	for _, route := range []string{"/v1/healthz", "/v1/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			return fmt.Errorf("%s: %w", route, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", route, resp.StatusCode)
		}
	}

	payload, ms, err := fetchMetrics(ts.URL)
	if err != nil {
		return err
	}
	if errs := obs.Lint(payload); len(errs) > 0 {
		return fmt.Errorf("/metrics failed exposition lint: %v", errs)
	}
	text := string(payload)
	for _, route := range metricsRoutes {
		if !strings.Contains(text, fmt.Sprintf("route=%q", route)) {
			return fmt.Errorf("/metrics has no per-route series for %s", route)
		}
	}
	for _, family := range metricsFamilies {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			return fmt.Errorf("/metrics missing family %s", family)
		}
	}
	fmt.Fprintf(w, "  scrape: %d series, %.2f ms, exposition lints clean\n", countSeries(text), ms)
	fmt.Fprintf(w, "  all %d routes and %d per-stage families present\n", len(metricsRoutes), len(metricsFamilies))
	fmt.Fprintln(w, "  OK")
	return nil
}

// metricsPhase measures the /metrics scrape under load inside the serve
// smoke: warm decompose traffic runs in the background while the endpoint
// is scraped repeatedly, and the final payload must lint clean. The
// scrape latency lands in BENCH_serve.json so a regression that makes the
// exposition expensive (per-key series explosion, lock contention) shows
// up in the perf trajectory.
func metricsPhase(w io.Writer, base, decomposeBody string, bench *serveBench) error {
	const (
		scrapes = 10
		loaders = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := timedPost(base+"/v1/decompose", decomposeBody); err != nil {
					return
				}
			}
		}()
	}
	var total float64
	var last []byte
	var err error
	for i := 0; i < scrapes; i++ {
		var ms float64
		if last, ms, err = fetchMetrics(base); err != nil {
			break
		}
		total += ms
	}
	close(stop)
	wg.Wait()
	if err != nil {
		return fmt.Errorf("scraping /metrics under load: %w", err)
	}
	if errs := obs.Lint(last); len(errs) > 0 {
		return fmt.Errorf("/metrics under load failed exposition lint: %v", errs)
	}
	bench.MetricsScrapeAvgMS = total / scrapes
	bench.MetricsSeries = countSeries(string(last))
	fmt.Fprintf(w, "  metrics scrape under load:    %8.2f ms  (avg of %d, %d series, lint clean)\n",
		bench.MetricsScrapeAvgMS, scrapes, bench.MetricsSeries)
	return nil
}

// fetchMetrics GETs /metrics once, returning the payload and latency.
func fetchMetrics(base string) (payload []byte, ms float64, err error) {
	start := time.Now()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return raw, time.Since(start).Seconds() * 1e3, nil
}

// countSeries counts the sample lines (non-comment, non-blank) in an
// exposition payload.
func countSeries(payload string) int {
	n := 0
	for _, line := range strings.Split(payload, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}
