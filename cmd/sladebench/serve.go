package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	slade "repro"
)

// serveBench is the machine-readable outcome of the smoke run, written as
// JSON when -bench-json is set so CI can accumulate a perf trajectory.
type serveBench struct {
	// ColdMS is the first decompose (pays Algorithm 2); WarmAvgMS the
	// cache-hit average; Speedup their ratio.
	ColdMS    float64 `json:"cold_ms"`
	WarmAvgMS float64 `json:"warm_avg_ms"`
	Speedup   float64 `json:"speedup"`
	// JobMS is the async solve-job round trip; RunMS the run-job round
	// trip (plan + simulated execution), with its achieved reliability
	// and bins issued.
	JobMS          float64 `json:"job_ms"`
	RunMS          float64 `json:"run_ms"`
	RunReliability float64 `json:"run_reliability"`
	RunBinsIssued  int     `json:"run_bins_issued"`
	// Batched-burst phase: a same-menu burst of BurstRequests requests of
	// BurstTasksPerReq tasks each is driven through the serving layer's
	// decompose path twice — once against a batch-less service, once
	// against one batching at BurstWindowMS — and BatchSpeedup is the
	// batched/unbatched throughput ratio (see docs/BENCHMARKS.md).
	BurstRequests      int     `json:"burst_requests"`
	BurstTasksPerReq   int     `json:"burst_tasks_per_request"`
	BurstWindowMS      float64 `json:"burst_window_ms"`
	UnbatchedReqPerSec float64 `json:"unbatched_req_per_sec"`
	BatchedReqPerSec   float64 `json:"batched_req_per_sec"`
	BatchSpeedup       float64 `json:"batch_speedup"`
	BatchMeanSize      float64 `json:"batch_mean_size"`
	// Metrics-scrape phase: GET /metrics is scraped repeatedly while warm
	// decompose traffic runs in the background; the payload must pass the
	// in-repo exposition lint. MetricsSeries counts the sample lines, so a
	// per-key series explosion shows up here before it hurts a scraper.
	MetricsScrapeAvgMS float64 `json:"metrics_scrape_avg_ms"`
	MetricsSeries      int     `json:"metrics_series"`
	// SSE-subscriber phase: one run job watched end to end over
	// GET /v1/jobs/{id}/events. FirstFrame is subscribe-to-first-frame.
	SSEFrames         int     `json:"sse_frames"`
	SSEProgressFrames int     `json:"sse_progress_frames"`
	SSEFirstFrameMS   float64 `json:"sse_first_frame_ms"`
	// Streaming-ingest phase: one incremental session driven over the
	// /v1/streams API in ragged batches, flushed, and checked for exact
	// cost parity with a one-shot decompose of the same arrivals.
	StreamTasks    int     `json:"stream_tasks"`
	StreamAppends  int     `json:"stream_appends"`
	StreamIngestMS float64 `json:"stream_ingest_ms"`
	StreamCost     float64 `json:"stream_cost"`
	// Plan-encode phase: a million-task plan streamed through
	// Plan.EncodeJSON. The alloc gate is the tentpole invariant — bytes
	// out grows with the task count, allocations stay O(runs).
	EncodeTasks   int     `json:"encode_tasks"`
	EncodeBytes   int64   `json:"encode_bytes"`
	EncodeMS      float64 `json:"encode_ms"`
	EncodeAllocKB float64 `json:"encode_alloc_kb"`
}

// encodeAllocBudgetKB fails the smoke if streaming a million-task plan
// allocates more than this. The bufio chunk plus number scratch measure
// ~40 KiB; 512 KiB allows GC bookkeeping noise while still catching any
// O(assignments) materialization sneaking back into the encoder.
const encodeAllocBudgetKB = 512

// runServeSmoke boots the decomposition service in-process behind a real
// HTTP listener and drives the request shapes sladed serves in production:
// a cold decompose (pays Algorithm 2), warm repeats (cache hits), an async
// job polled to completion, and a "kind":"run" job executed against the
// seeded simulated platform. It prints per-phase latency and the /v1/stats
// counters so a deployment can eyeball cache amortization before taking
// traffic; with a non-empty jsonPath it also writes the measurements as
// JSON for CI artifacts.
func runServeSmoke(w io.Writer, jsonPath string) error {
	// Per-request Info lines would drown the smoke's own report (the
	// metrics phase alone fires dozens of requests); warnings still pass.
	svc := slade.NewService(slade.ServiceConfig{
		Slog: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	ts := httptest.NewServer(slade.NewServiceHandler(svc))
	defer ts.Close()

	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	binsJSON, err := json.Marshal(menu.Bins())
	if err != nil {
		return err
	}
	body := fmt.Sprintf(`{"bins":%s,"n":10000,"threshold":0.9}`, binsJSON)

	fmt.Fprintf(w, "service smoke test against %s\n", ts.URL)
	var bench serveBench

	cold, err := timedPost(ts.URL+"/v1/decompose", body)
	if err != nil {
		return fmt.Errorf("cold decompose: %w", err)
	}
	bench.ColdMS = cold.Seconds() * 1e3
	fmt.Fprintf(w, "  cold decompose (builds OPQ):  %8.2f ms\n", bench.ColdMS)

	const warmRuns = 5
	var warmTotal time.Duration
	for i := 0; i < warmRuns; i++ {
		warm, err := timedPost(ts.URL+"/v1/decompose", body)
		if err != nil {
			return fmt.Errorf("warm decompose: %w", err)
		}
		warmTotal += warm
	}
	warmAvg := warmTotal / warmRuns
	bench.WarmAvgMS = warmAvg.Seconds() * 1e3
	fmt.Fprintf(w, "  warm decompose (cache hit):   %8.2f ms  (avg of %d)\n", bench.WarmAvgMS, warmRuns)
	if warmAvg > 0 {
		bench.Speedup = float64(cold) / float64(warmAvg)
		fmt.Fprintf(w, "  cold/warm ratio:              %8.1fx\n", bench.Speedup)
	}

	if bench.JobMS, err = smokeJob(w, ts.URL, body); err != nil {
		return err
	}
	if err := smokeRunJob(w, ts.URL, binsJSON, &bench); err != nil {
		return err
	}
	if err := metricsPhase(w, ts.URL, body, &bench); err != nil {
		return err
	}
	if err := ssePhase(w, ts.URL, binsJSON, &bench); err != nil {
		return err
	}
	if err := streamIngestPhase(w, ts.URL, binsJSON, &bench); err != nil {
		return err
	}
	if err := planEncodePhase(w, svc, menu, &bench); err != nil {
		return err
	}
	if err := burstPhase(w, menu, &bench); err != nil {
		return err
	}

	st := svc.Stats()
	fmt.Fprintf(w, "  stats: requests=%d errors=%d cache{builds=%d hits=%d misses=%d} jobs{done=%d runs=%d} streams{opened=%d tasks=%d}\n",
		st.Requests, st.Errors, st.Cache.Builds, st.Cache.Hits, st.Cache.Misses, st.Jobs.Done, st.Jobs.Runs,
		st.Streams.Opened, st.Streams.TasksAppended)
	if st.Errors > 0 {
		return fmt.Errorf("smoke test saw %d request errors", st.Errors)
	}
	if st.Cache.Builds != 1 {
		return fmt.Errorf("expected one OPQ build for one menu, got %d", st.Cache.Builds)
	}
	if st.Jobs.Runs != 2 {
		return fmt.Errorf("expected two executed run jobs, got %d", st.Jobs.Runs)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing bench json: %w", err)
		}
		fmt.Fprintf(w, "  bench json written to %s\n", jsonPath)
	}
	fmt.Fprintln(w, "  OK")
	return nil
}

// burstPhase measures the batching front-end: the same same-menu burst —
// burstC concurrent requesters each firing burstRounds small decompose
// requests — is driven through the serving layer's decompose path (solve +
// summary, exactly the work POST /v1/decompose performs per request)
// against a batch-less service and against one batching at a 2ms window,
// and the throughput ratio is recorded. The burst runs in-process so the
// measurement isolates the decomposition path; the HTTP codec work is
// identical in both modes and would only dilute the ratio. Batching keeps
// per-request cost bit-identical (the invariant tests pin this), so the
// speedup is pure amortization: one shared block-aligned solve and one
// summary per batch of identical requests instead of one each.
func burstPhase(w io.Writer, menu slade.BinSet, bench *serveBench) error {
	const (
		burstC      = 1024 // concurrent requesters
		burstRounds = 5    // requests per requester per mode
		burstN      = 2000 // tasks per request
		burstThr    = 0.9
		burstWindow = 2 * time.Millisecond
		burstCap    = 64 // members per batch before an early flush
	)
	in, err := slade.NewHomogeneous(menu, burstN, burstThr)
	if err != nil {
		return err
	}

	run := func(svc *slade.Service) (time.Duration, error) {
		defer svc.Close()
		ctx := context.Background()
		if _, err := svc.Decompose(ctx, in); err != nil { // warm the queue cache
			return 0, err
		}
		var wg sync.WaitGroup
		errs := make([]error, burstC)
		start := make(chan struct{})
		for g := 0; g < burstC; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for r := 0; r < burstRounds; r++ {
					if _, _, err := svc.DecomposeSummarized(ctx, "sharded", in); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		begin := time.Now()
		close(start)
		wg.Wait()
		elapsed := time.Since(begin)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}

	unbatched, err := run(slade.NewService(slade.ServiceConfig{}))
	if err != nil {
		return fmt.Errorf("unbatched burst: %w", err)
	}
	batchedSvc := slade.NewService(slade.ServiceConfig{
		BatchWindow:      burstWindow,
		BatchMaxRequests: burstCap,
	})
	batched, err := run(batchedSvc)
	if err != nil {
		return fmt.Errorf("batched burst: %w", err)
	}
	meanSize := batchedSvc.Stats().Batch.MeanSize

	total := float64(burstC * burstRounds)
	bench.BurstRequests = burstC * burstRounds
	bench.BurstTasksPerReq = burstN
	bench.BurstWindowMS = float64(burstWindow) / float64(time.Millisecond)
	bench.UnbatchedReqPerSec = total / unbatched.Seconds()
	bench.BatchedReqPerSec = total / batched.Seconds()
	bench.BatchMeanSize = meanSize
	if batched > 0 {
		bench.BatchSpeedup = float64(unbatched) / float64(batched)
	}
	fmt.Fprintf(w, "  burst unbatched (%d × n=%d): %8.0f req/s\n", bench.BurstRequests, burstN, bench.UnbatchedReqPerSec)
	fmt.Fprintf(w, "  burst batched (window=2ms):   %8.0f req/s  (%.1fx, mean batch %.1f)\n",
		bench.BatchedReqPerSec, bench.BatchSpeedup, meanSize)
	// Historical note: before the compact block-run plan form, a solo
	// solve expanded thousands of per-use slices and batching bought ≥2x
	// on bursts. With solves now ~12 allocations flat, there is little
	// left to amortize and both modes run an order of magnitude faster;
	// the number to police is that coalescing never makes bursts *slower*
	// (see docs/BENCHMARKS.md).
	if bench.BatchSpeedup < 0.75 {
		fmt.Fprintf(w, "  warning: batched-burst speedup %.2fx — batching is costing throughput\n", bench.BatchSpeedup)
	}
	return nil
}

// ssePhase watches one run job end to end through the SSE event stream:
// submit, subscribe to GET /v1/jobs/{id}/events, and read frames until
// the terminal frame closes the stream. Records frame counts and the
// subscribe-to-first-frame latency.
func ssePhase(w io.Writer, base string, binsJSON []byte, bench *serveBench) error {
	body := fmt.Sprintf(`{"kind":"run","bins":%s,"n":500,"threshold":0.9,
		"run":{"platform":"jelly","seed":2}}`, binsJSON)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("sse phase: submit status %d", resp.StatusCode)
	}

	start := time.Now()
	sub, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		return err
	}
	defer sub.Body.Close()
	if ct := sub.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("sse phase: content type %q", ct)
	}
	sc := bufio.NewScanner(sub.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var lastEvent string
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			if bench.SSEFrames == 0 {
				bench.SSEFirstFrameMS = time.Since(start).Seconds() * 1e3
			}
			bench.SSEFrames++
			if name == "progress" {
				bench.SSEProgressFrames++
			}
			lastEvent = name
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sse phase: reading stream: %w", err)
	}
	if bench.SSEProgressFrames < 1 || lastEvent != "done" {
		return fmt.Errorf("sse phase: %d progress frames, final event %q", bench.SSEProgressFrames, lastEvent)
	}
	fmt.Fprintf(w, "  sse job %-8s frames:        %8d     (%d progress, first in %.2f ms)\n",
		st.ID, bench.SSEFrames, bench.SSEProgressFrames, bench.SSEFirstFrameMS)
	return nil
}

// streamIngestPhase drives one incremental-ingest session over the
// /v1/streams API — ragged appends, flush, merged summary — and checks
// the merged cost exactly matches a one-shot decompose of the same
// arrival count (the stream.Planner parity guarantee, observed through
// the wire).
func streamIngestPhase(w io.Writer, base string, binsJSON []byte, bench *serveBench) error {
	post := func(url, body string, dst any) error {
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			raw, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, raw)
		}
		return json.NewDecoder(resp.Body).Decode(dst)
	}

	start := time.Now()
	var opened struct {
		ID string `json:"id"`
	}
	if err := post(base+"/v1/streams", fmt.Sprintf(`{"bins":%s,"threshold":0.9}`, binsJSON), &opened); err != nil {
		return fmt.Errorf("stream phase: open: %w", err)
	}
	next := 0
	for _, size := range []int{500, 300, 400} {
		ids := make([]int, size)
		for i := range ids {
			ids[i] = next
			next++
		}
		payload, err := json.Marshal(struct {
			Tasks []int `json:"tasks"`
		}{ids})
		if err != nil {
			return err
		}
		var st struct{}
		if err := post(base+"/v1/streams/"+opened.ID+"/tasks", string(payload), &st); err != nil {
			return fmt.Errorf("stream phase: append: %w", err)
		}
		bench.StreamAppends++
	}
	var flushed struct {
		Summary struct {
			Cost float64 `json:"cost"`
		} `json:"summary"`
	}
	if err := post(base+"/v1/streams/"+opened.ID+"/flush", "{}", &flushed); err != nil {
		return fmt.Errorf("stream phase: flush: %w", err)
	}
	bench.StreamTasks = next
	bench.StreamIngestMS = time.Since(start).Seconds() * 1e3
	bench.StreamCost = flushed.Summary.Cost

	var oneShot struct {
		Summary struct {
			Cost float64 `json:"cost"`
		} `json:"summary"`
	}
	body := fmt.Sprintf(`{"bins":%s,"n":%d,"threshold":0.9}`, binsJSON, next)
	if err := post(base+"/v1/decompose", body, &oneShot); err != nil {
		return fmt.Errorf("stream phase: one-shot reference: %w", err)
	}
	if flushed.Summary.Cost != oneShot.Summary.Cost {
		return fmt.Errorf("stream phase: incremental cost %v != one-shot cost %v",
			flushed.Summary.Cost, oneShot.Summary.Cost)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/streams/"+opened.ID, nil)
	if err != nil {
		return err
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	del.Body.Close()
	fmt.Fprintf(w, "  stream ingest (%d tasks):    %8.2f ms  (%d appends, cost %.2f = one-shot)\n",
		bench.StreamTasks, bench.StreamIngestMS, bench.StreamAppends, bench.StreamCost)
	return nil
}

// countingDiscard counts bytes written to it.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// planEncodePhase is the O(runs) plan-encoding gate: solve a million-task
// instance (cache hit — same menu and threshold as the cold phase), then
// stream the plan's JSON through Plan.EncodeJSON and measure allocations.
// Bytes out scale with the task count; allocations must not.
func planEncodePhase(w io.Writer, svc *slade.Service, menu slade.BinSet, bench *serveBench) error {
	const encodeN = 1_000_000
	in, err := slade.NewHomogeneous(menu, encodeN, 0.9)
	if err != nil {
		return err
	}
	plan, err := svc.Decompose(context.Background(), in)
	if err != nil {
		return err
	}

	var cw countingDiscard
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := plan.EncodeJSON(&cw); err != nil {
		return err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	bench.EncodeTasks = encodeN
	bench.EncodeBytes = cw.n
	bench.EncodeMS = elapsed.Seconds() * 1e3
	bench.EncodeAllocKB = float64(after.TotalAlloc-before.TotalAlloc) / 1024
	fmt.Fprintf(w, "  encode %d-task plan:     %8.2f ms  (%.1f MB out, %.0f KB allocated)\n",
		encodeN, bench.EncodeMS, float64(cw.n)/(1<<20), bench.EncodeAllocKB)
	if bench.EncodeAllocKB > encodeAllocBudgetKB {
		return fmt.Errorf("plan encode allocated %.0f KB for %d tasks; budget is %d KB — "+
			"the encoder is materializing instead of streaming", bench.EncodeAllocKB, encodeN, encodeAllocBudgetKB)
	}
	return nil
}

// smokeRunJob submits one small "kind":"run" job against the seeded Jelly
// platform and polls it to a terminal report.
func smokeRunJob(w io.Writer, base string, binsJSON []byte, bench *serveBench) error {
	body := fmt.Sprintf(`{"kind":"run","bins":%s,"n":500,"threshold":0.9,
		"run":{"platform":"jelly","seed":1}}`, binsJSON)
	out, err := submitAndPollJob(base, body, 60*time.Second)
	if err != nil {
		return err
	}
	var jv struct {
		Report *struct {
			Empirical  float64 `json:"empirical_reliability"`
			BinsIssued int     `json:"bins_issued"`
		} `json:"report"`
	}
	if err := json.Unmarshal(out.Final, &jv); err != nil {
		return err
	}
	if jv.Report == nil {
		return fmt.Errorf("run job %s done without a report", out.ID)
	}
	bench.RunMS = out.MS
	bench.RunReliability = jv.Report.Empirical
	bench.RunBinsIssued = jv.Report.BinsIssued
	fmt.Fprintf(w, "  run job %-8s done in:       %8.2f ms  (reliability %.3f, %d bins)\n",
		out.ID, bench.RunMS, bench.RunReliability, bench.RunBinsIssued)
	return nil
}

// jobOutcome is one submitted job polled to Done: its id, round-trip
// latency, and the final status body for caller-specific fields.
type jobOutcome struct {
	ID    string
	MS    float64
	Final []byte
}

// submitAndPollJob posts one job and polls it until Done, failing on any
// other terminal state or on the deadline.
func submitAndPollJob(base, body string, deadline time.Duration) (jobOutcome, error) {
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return jobOutcome{}, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return jobOutcome{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobOutcome{}, fmt.Errorf("job submit: status %d", resp.StatusCode)
	}
	stop := time.Now().Add(deadline)
	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobOutcome{}, err
		}
		raw, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return jobOutcome{}, err
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return jobOutcome{}, err
		}
		switch st.State {
		case "done":
			return jobOutcome{ID: st.ID, MS: time.Since(start).Seconds() * 1e3, Final: raw}, nil
		case "failed", "canceled":
			return jobOutcome{}, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(stop) {
			return jobOutcome{}, fmt.Errorf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// smokeJob submits one async solve job, polls it to completion, and
// returns the round-trip latency in milliseconds.
func smokeJob(w io.Writer, base, body string) (float64, error) {
	out, err := submitAndPollJob(base, body, 30*time.Second)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "  async job %-8s done in:     %8.2f ms\n", out.ID, out.MS)
	return out.MS, nil
}

// timedPost posts body and returns the request latency, failing on any
// non-200 status.
func timedPost(url, body string) (time.Duration, error) {
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
