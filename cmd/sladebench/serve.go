package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	slade "repro"
)

// serveBench is the machine-readable outcome of the smoke run, written as
// JSON when -bench-json is set so CI can accumulate a perf trajectory.
type serveBench struct {
	// ColdMS is the first decompose (pays Algorithm 2); WarmAvgMS the
	// cache-hit average; Speedup their ratio.
	ColdMS    float64 `json:"cold_ms"`
	WarmAvgMS float64 `json:"warm_avg_ms"`
	Speedup   float64 `json:"speedup"`
	// JobMS is the async solve-job round trip; RunMS the run-job round
	// trip (plan + simulated execution), with its achieved reliability
	// and bins issued.
	JobMS          float64 `json:"job_ms"`
	RunMS          float64 `json:"run_ms"`
	RunReliability float64 `json:"run_reliability"`
	RunBinsIssued  int     `json:"run_bins_issued"`
	// Batched-burst phase: a same-menu burst of BurstRequests requests of
	// BurstTasksPerReq tasks each is driven through the serving layer's
	// decompose path twice — once against a batch-less service, once
	// against one batching at BurstWindowMS — and BatchSpeedup is the
	// batched/unbatched throughput ratio (see docs/BENCHMARKS.md).
	BurstRequests      int     `json:"burst_requests"`
	BurstTasksPerReq   int     `json:"burst_tasks_per_request"`
	BurstWindowMS      float64 `json:"burst_window_ms"`
	UnbatchedReqPerSec float64 `json:"unbatched_req_per_sec"`
	BatchedReqPerSec   float64 `json:"batched_req_per_sec"`
	BatchSpeedup       float64 `json:"batch_speedup"`
	BatchMeanSize      float64 `json:"batch_mean_size"`
	// Metrics-scrape phase: GET /metrics is scraped repeatedly while warm
	// decompose traffic runs in the background; the payload must pass the
	// in-repo exposition lint. MetricsSeries counts the sample lines, so a
	// per-key series explosion shows up here before it hurts a scraper.
	MetricsScrapeAvgMS float64 `json:"metrics_scrape_avg_ms"`
	MetricsSeries      int     `json:"metrics_series"`
}

// runServeSmoke boots the decomposition service in-process behind a real
// HTTP listener and drives the request shapes sladed serves in production:
// a cold decompose (pays Algorithm 2), warm repeats (cache hits), an async
// job polled to completion, and a "kind":"run" job executed against the
// seeded simulated platform. It prints per-phase latency and the /v1/stats
// counters so a deployment can eyeball cache amortization before taking
// traffic; with a non-empty jsonPath it also writes the measurements as
// JSON for CI artifacts.
func runServeSmoke(w io.Writer, jsonPath string) error {
	// Per-request Info lines would drown the smoke's own report (the
	// metrics phase alone fires dozens of requests); warnings still pass.
	svc := slade.NewService(slade.ServiceConfig{
		Slog: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	ts := httptest.NewServer(slade.NewServiceHandler(svc))
	defer ts.Close()

	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	binsJSON, err := json.Marshal(menu.Bins())
	if err != nil {
		return err
	}
	body := fmt.Sprintf(`{"bins":%s,"n":10000,"threshold":0.9}`, binsJSON)

	fmt.Fprintf(w, "service smoke test against %s\n", ts.URL)
	var bench serveBench

	cold, err := timedPost(ts.URL+"/v1/decompose", body)
	if err != nil {
		return fmt.Errorf("cold decompose: %w", err)
	}
	bench.ColdMS = cold.Seconds() * 1e3
	fmt.Fprintf(w, "  cold decompose (builds OPQ):  %8.2f ms\n", bench.ColdMS)

	const warmRuns = 5
	var warmTotal time.Duration
	for i := 0; i < warmRuns; i++ {
		warm, err := timedPost(ts.URL+"/v1/decompose", body)
		if err != nil {
			return fmt.Errorf("warm decompose: %w", err)
		}
		warmTotal += warm
	}
	warmAvg := warmTotal / warmRuns
	bench.WarmAvgMS = warmAvg.Seconds() * 1e3
	fmt.Fprintf(w, "  warm decompose (cache hit):   %8.2f ms  (avg of %d)\n", bench.WarmAvgMS, warmRuns)
	if warmAvg > 0 {
		bench.Speedup = float64(cold) / float64(warmAvg)
		fmt.Fprintf(w, "  cold/warm ratio:              %8.1fx\n", bench.Speedup)
	}

	if bench.JobMS, err = smokeJob(w, ts.URL, body); err != nil {
		return err
	}
	if err := smokeRunJob(w, ts.URL, binsJSON, &bench); err != nil {
		return err
	}
	if err := metricsPhase(w, ts.URL, body, &bench); err != nil {
		return err
	}
	if err := burstPhase(w, menu, &bench); err != nil {
		return err
	}

	st := svc.Stats()
	fmt.Fprintf(w, "  stats: requests=%d errors=%d cache{builds=%d hits=%d misses=%d} jobs{done=%d runs=%d}\n",
		st.Requests, st.Errors, st.Cache.Builds, st.Cache.Hits, st.Cache.Misses, st.Jobs.Done, st.Jobs.Runs)
	if st.Errors > 0 {
		return fmt.Errorf("smoke test saw %d request errors", st.Errors)
	}
	if st.Cache.Builds != 1 {
		return fmt.Errorf("expected one OPQ build for one menu, got %d", st.Cache.Builds)
	}
	if st.Jobs.Runs != 1 {
		return fmt.Errorf("expected one executed run job, got %d", st.Jobs.Runs)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing bench json: %w", err)
		}
		fmt.Fprintf(w, "  bench json written to %s\n", jsonPath)
	}
	fmt.Fprintln(w, "  OK")
	return nil
}

// burstPhase measures the batching front-end: the same same-menu burst —
// burstC concurrent requesters each firing burstRounds small decompose
// requests — is driven through the serving layer's decompose path (solve +
// summary, exactly the work POST /v1/decompose performs per request)
// against a batch-less service and against one batching at a 2ms window,
// and the throughput ratio is recorded. The burst runs in-process so the
// measurement isolates the decomposition path; the HTTP codec work is
// identical in both modes and would only dilute the ratio. Batching keeps
// per-request cost bit-identical (the invariant tests pin this), so the
// speedup is pure amortization: one shared block-aligned solve and one
// summary per batch of identical requests instead of one each.
func burstPhase(w io.Writer, menu slade.BinSet, bench *serveBench) error {
	const (
		burstC      = 1024 // concurrent requesters
		burstRounds = 5    // requests per requester per mode
		burstN      = 2000 // tasks per request
		burstThr    = 0.9
		burstWindow = 2 * time.Millisecond
		burstCap    = 64 // members per batch before an early flush
	)
	in, err := slade.NewHomogeneous(menu, burstN, burstThr)
	if err != nil {
		return err
	}

	run := func(svc *slade.Service) (time.Duration, error) {
		defer svc.Close()
		ctx := context.Background()
		if _, err := svc.Decompose(ctx, in); err != nil { // warm the queue cache
			return 0, err
		}
		var wg sync.WaitGroup
		errs := make([]error, burstC)
		start := make(chan struct{})
		for g := 0; g < burstC; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for r := 0; r < burstRounds; r++ {
					if _, _, err := svc.DecomposeSummarized(ctx, "sharded", in); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		begin := time.Now()
		close(start)
		wg.Wait()
		elapsed := time.Since(begin)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}

	unbatched, err := run(slade.NewService(slade.ServiceConfig{}))
	if err != nil {
		return fmt.Errorf("unbatched burst: %w", err)
	}
	batchedSvc := slade.NewService(slade.ServiceConfig{
		BatchWindow:      burstWindow,
		BatchMaxRequests: burstCap,
	})
	batched, err := run(batchedSvc)
	if err != nil {
		return fmt.Errorf("batched burst: %w", err)
	}
	meanSize := batchedSvc.Stats().Batch.MeanSize

	total := float64(burstC * burstRounds)
	bench.BurstRequests = burstC * burstRounds
	bench.BurstTasksPerReq = burstN
	bench.BurstWindowMS = float64(burstWindow) / float64(time.Millisecond)
	bench.UnbatchedReqPerSec = total / unbatched.Seconds()
	bench.BatchedReqPerSec = total / batched.Seconds()
	bench.BatchMeanSize = meanSize
	if batched > 0 {
		bench.BatchSpeedup = float64(unbatched) / float64(batched)
	}
	fmt.Fprintf(w, "  burst unbatched (%d × n=%d): %8.0f req/s\n", bench.BurstRequests, burstN, bench.UnbatchedReqPerSec)
	fmt.Fprintf(w, "  burst batched (window=2ms):   %8.0f req/s  (%.1fx, mean batch %.1f)\n",
		bench.BatchedReqPerSec, bench.BatchSpeedup, meanSize)
	// Historical note: before the compact block-run plan form, a solo
	// solve expanded thousands of per-use slices and batching bought ≥2x
	// on bursts. With solves now ~12 allocations flat, there is little
	// left to amortize and both modes run an order of magnitude faster;
	// the number to police is that coalescing never makes bursts *slower*
	// (see docs/BENCHMARKS.md).
	if bench.BatchSpeedup < 0.75 {
		fmt.Fprintf(w, "  warning: batched-burst speedup %.2fx — batching is costing throughput\n", bench.BatchSpeedup)
	}
	return nil
}

// smokeRunJob submits one small "kind":"run" job against the seeded Jelly
// platform and polls it to a terminal report.
func smokeRunJob(w io.Writer, base string, binsJSON []byte, bench *serveBench) error {
	body := fmt.Sprintf(`{"kind":"run","bins":%s,"n":500,"threshold":0.9,
		"run":{"platform":"jelly","seed":1}}`, binsJSON)
	out, err := submitAndPollJob(base, body, 60*time.Second)
	if err != nil {
		return err
	}
	var jv struct {
		Report *struct {
			Empirical  float64 `json:"empirical_reliability"`
			BinsIssued int     `json:"bins_issued"`
		} `json:"report"`
	}
	if err := json.Unmarshal(out.Final, &jv); err != nil {
		return err
	}
	if jv.Report == nil {
		return fmt.Errorf("run job %s done without a report", out.ID)
	}
	bench.RunMS = out.MS
	bench.RunReliability = jv.Report.Empirical
	bench.RunBinsIssued = jv.Report.BinsIssued
	fmt.Fprintf(w, "  run job %-8s done in:       %8.2f ms  (reliability %.3f, %d bins)\n",
		out.ID, bench.RunMS, bench.RunReliability, bench.RunBinsIssued)
	return nil
}

// jobOutcome is one submitted job polled to Done: its id, round-trip
// latency, and the final status body for caller-specific fields.
type jobOutcome struct {
	ID    string
	MS    float64
	Final []byte
}

// submitAndPollJob posts one job and polls it until Done, failing on any
// other terminal state or on the deadline.
func submitAndPollJob(base, body string, deadline time.Duration) (jobOutcome, error) {
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return jobOutcome{}, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return jobOutcome{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobOutcome{}, fmt.Errorf("job submit: status %d", resp.StatusCode)
	}
	stop := time.Now().Add(deadline)
	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobOutcome{}, err
		}
		raw, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return jobOutcome{}, err
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return jobOutcome{}, err
		}
		switch st.State {
		case "done":
			return jobOutcome{ID: st.ID, MS: time.Since(start).Seconds() * 1e3, Final: raw}, nil
		case "failed", "canceled":
			return jobOutcome{}, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(stop) {
			return jobOutcome{}, fmt.Errorf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// smokeJob submits one async solve job, polls it to completion, and
// returns the round-trip latency in milliseconds.
func smokeJob(w io.Writer, base, body string) (float64, error) {
	out, err := submitAndPollJob(base, body, 30*time.Second)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "  async job %-8s done in:     %8.2f ms\n", out.ID, out.MS)
	return out.MS, nil
}

// timedPost posts body and returns the request latency, failing on any
// non-200 status.
func timedPost(url, body string) (time.Duration, error) {
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
