package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	slade "repro"
)

// runServeSmoke boots the decomposition service in-process behind a real
// HTTP listener and drives the request shapes sladed serves in production:
// a cold decompose (pays Algorithm 2), warm repeats (cache hits), and an
// async job polled to completion. It prints per-phase latency and the
// /v1/stats counters so a deployment can eyeball cache amortization before
// taking traffic.
func runServeSmoke(w io.Writer) error {
	svc := slade.NewService(slade.ServiceConfig{})
	ts := httptest.NewServer(slade.NewServiceHandler(svc))
	defer ts.Close()

	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	binsJSON, err := json.Marshal(menu.Bins())
	if err != nil {
		return err
	}
	body := fmt.Sprintf(`{"bins":%s,"n":10000,"threshold":0.9}`, binsJSON)

	fmt.Fprintf(w, "service smoke test against %s\n", ts.URL)

	cold, err := timedPost(ts.URL+"/v1/decompose", body)
	if err != nil {
		return fmt.Errorf("cold decompose: %w", err)
	}
	fmt.Fprintf(w, "  cold decompose (builds OPQ):  %8.2f ms\n", cold.Seconds()*1e3)

	const warmRuns = 5
	var warmTotal time.Duration
	for i := 0; i < warmRuns; i++ {
		warm, err := timedPost(ts.URL+"/v1/decompose", body)
		if err != nil {
			return fmt.Errorf("warm decompose: %w", err)
		}
		warmTotal += warm
	}
	warmAvg := warmTotal / warmRuns
	fmt.Fprintf(w, "  warm decompose (cache hit):   %8.2f ms  (avg of %d)\n", warmAvg.Seconds()*1e3, warmRuns)
	if warmAvg > 0 {
		fmt.Fprintf(w, "  cold/warm ratio:              %8.1fx\n", float64(cold)/float64(warmAvg))
	}

	if err := smokeJob(w, ts.URL, body); err != nil {
		return err
	}

	st := svc.Stats()
	fmt.Fprintf(w, "  stats: requests=%d errors=%d cache{builds=%d hits=%d misses=%d} jobs{done=%d}\n",
		st.Requests, st.Errors, st.Cache.Builds, st.Cache.Hits, st.Cache.Misses, st.Jobs.Done)
	if st.Errors > 0 {
		return fmt.Errorf("smoke test saw %d request errors", st.Errors)
	}
	if st.Cache.Builds != 1 {
		return fmt.Errorf("expected one OPQ build for one menu, got %d", st.Cache.Builds)
	}
	fmt.Fprintln(w, "  OK")
	return nil
}

// smokeJob submits one async job and polls it to completion.
func smokeJob(w io.Writer, base, body string) error {
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("job submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			fmt.Fprintf(w, "  async job %-8s done in:     %8.2f ms\n", st.ID, time.Since(start).Seconds()*1e3)
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// timedPost posts body and returns the request latency, failing on any
// non-200 status.
func timedPost(url, body string) (time.Duration, error) {
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
