package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	slade "repro"
	"repro/internal/cluster/testcluster"
	"repro/internal/service"
)

// clusterBench is the machine-readable outcome of the cluster smoke,
// written as JSON when -cluster-json is set.
type clusterBench struct {
	Nodes int `json:"nodes"`
	// HealthyMS is the clustered decompose latency with all peers up;
	// DegradedMS the same request after one peer is killed (retry budget
	// exhausts against the dead address, its span falls back locally).
	HealthyMS  float64 `json:"healthy_ms"`
	DegradedMS float64 `json:"degraded_ms"`
	// Cost is the clustered plan cost; parity with the single-node solve
	// of the same instance is asserted exactly, so a written file is
	// itself evidence the invariant held.
	Cost        float64 `json:"cost"`
	SpansRemote uint64  `json:"spans_remote"`
	SpansLocal  uint64  `json:"spans_local"`
	Fallbacks   uint64  `json:"fallbacks"`
}

// runClusterSmoke boots an in-process 3-node sladed cluster (real HTTP
// between nodes, fault injector on every peer link), fans one decompose
// across it, kills a peer, and repeats — asserting both times that the
// clustered cost equals the single-node solve of the same instance bit
// for bit. It is the deployable-shaped version of the chaos test: a
// one-command check that scale-out on this machine changes latency, not
// answers.
func runClusterSmoke(w io.Writer, jsonPath string) error {
	tc, err := testcluster.Start(testcluster.Options{Nodes: 3, Seed: 42, Workers: 2, Timeout: 15 * time.Second})
	if err != nil {
		return err
	}
	defer tc.Close()

	menu, err := slade.JellyMenu(20)
	if err != nil {
		return err
	}
	binsJSON, err := json.Marshal(menu.Bins())
	if err != nil {
		return err
	}
	const n, threshold = 20000, 0.9
	body := fmt.Sprintf(`{"bins":%s,"n":%d,"threshold":%g}`, binsJSON, n, threshold)
	entry := tc.Node(0)

	bench := clusterBench{Nodes: 3}
	fmt.Fprintf(w, "cluster smoke test: 3 nodes, entry %s\n", entry.URL)

	// Single-node reference for the parity assertion.
	ref := service.New(service.Config{Workers: 2, Logger: log.New(io.Discard, "", 0)})
	defer ref.Close()
	in, err := slade.NewHomogeneous(menu, n, threshold)
	if err != nil {
		return err
	}
	_, refSum, err := ref.DecomposeSummarized(context.Background(), service.DefaultSolverName, in)
	if err != nil {
		return fmt.Errorf("single-node reference solve: %w", err)
	}

	solve := func(tag string) (float64, time.Duration, error) {
		start := time.Now()
		resp, err := http.Post(entry.URL+"/v1/decompose", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, 0, fmt.Errorf("%s decompose: %w", tag, err)
		}
		defer resp.Body.Close()
		var out struct {
			Solver  string `json:"solver"`
			Summary struct {
				Cost float64 `json:"cost"`
			} `json:"summary"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, 0, fmt.Errorf("%s decompose: %w", tag, err)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("%s decompose: status %d", tag, resp.StatusCode)
		}
		if out.Solver != service.ClusterSolverName {
			return 0, 0, fmt.Errorf("%s decompose: served by %q, want %q", tag, out.Solver, service.ClusterSolverName)
		}
		return out.Summary.Cost, time.Since(start), nil
	}

	cost, healthy, err := solve("healthy")
	if err != nil {
		return err
	}
	if cost != refSum.Cost {
		return fmt.Errorf("healthy cluster cost %v != single-node cost %v — distribution changed the answer", cost, refSum.Cost)
	}
	bench.Cost = cost
	bench.HealthyMS = healthy.Seconds() * 1e3
	fmt.Fprintf(w, "  healthy decompose (n=%d):  %8.2f ms  (cost %.2f = single-node)\n", n, bench.HealthyMS, cost)

	// Kill one peer; its span must fall back locally with the same bytes.
	victim := tc.Node(2).URL
	tc.Faults.Kill(victim)
	cost, degraded, err := solve("degraded")
	if err != nil {
		return err
	}
	if cost != refSum.Cost {
		return fmt.Errorf("degraded cluster cost %v != single-node cost %v — fallback changed the answer", cost, refSum.Cost)
	}
	bench.DegradedMS = degraded.Seconds() * 1e3
	fmt.Fprintf(w, "  peer killed, decompose:       %8.2f ms  (cost unchanged, fallback absorbed it)\n", bench.DegradedMS)
	tc.Faults.Revive(victim)

	st := entry.Service.Stats()
	if st.Cluster == nil {
		return fmt.Errorf("entry node reports no cluster stats")
	}
	bench.SpansRemote = st.Cluster.SpansRemote
	bench.SpansLocal = st.Cluster.SpansLocal
	bench.Fallbacks = st.Cluster.Fallbacks
	fmt.Fprintf(w, "  spans: remote=%d local=%d fallbacks=%d\n", bench.SpansRemote, bench.SpansLocal, bench.Fallbacks)
	for _, p := range st.Cluster.Peers {
		fmt.Fprintf(w, "  peer %s state=%s requests=%d failures=%d fallbacks=%d\n",
			p.URL, p.State, p.Requests, p.Failures, p.Fallbacks)
	}
	if bench.SpansRemote == 0 {
		return fmt.Errorf("no spans solved remotely — the fan-out never left the entry node")
	}
	if bench.Fallbacks == 0 {
		return fmt.Errorf("killed peer produced no fallbacks — the degraded request never hit it")
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing cluster bench json: %w", err)
		}
		fmt.Fprintf(w, "  bench json written to %s\n", jsonPath)
	}
	fmt.Fprintln(w, "  OK")
	return nil
}
