package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"repro/internal/binset"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/opq"
	"repro/internal/platform"
	"repro/internal/platform/testplatform"
	"repro/internal/service"
)

// platformBench is the machine-readable outcome of the remote-platform
// smoke, written as JSON when -platform-json is set.
type platformBench struct {
	// Chaos phase: one run executed against a clean marketplace and again
	// against the same seed with ~25% of traffic faulted. Parity fields
	// are asserted before the file is written, so a written file is
	// itself evidence the invariants held.
	Tasks      int     `json:"tasks"`
	BinsIssued int     `json:"bins_issued"`
	Spent      float64 `json:"spent"`
	// Charged is the faulty marketplace's ledger; equal to Spent or the
	// smoke fails (zero double-paid bins under faults).
	Charged  float64 `json:"charged"`
	Requests uint64  `json:"requests"`
	Replays  uint64  `json:"replays"`
	ChaosMS  float64 `json:"chaos_ms"`
	// Degradation phase: the marketplace dies mid-run under a daemon-wide
	// client; the run settles with a partial degraded report and the
	// health probe keeps answering 200.
	DegradedBins  int     `json:"degraded_bins"`
	DegradedSpent float64 `json:"degraded_spent"`
}

// runPlatformSmoke drives the remote bin marketplace end to end: a chaos
// phase (faulted marketplace, exact spend parity and byte-identical
// reports against the fault-free run) and a degradation phase (the
// marketplace dies mid-run; the job finishes with a partial report and
// /v1/healthz stays 200). The one-command check that remote execution on
// this machine changes transport, not answers — and degrades, not dies.
func runPlatformSmoke(w io.Writer, jsonPath string) error {
	const seed, tasks = 7, 800
	menu := binset.MustJelly(20)
	in, err := core.NewHomogeneous(menu, tasks, 0.95)
	if err != nil {
		return err
	}
	plan, err := (opq.Solver{}).Solve(in)
	if err != nil {
		return err
	}
	truth := make([]bool, tasks)
	for i := range truth {
		truth[i] = i%3 == 0
	}
	opts := executor.Options{RunID: "platform-smoke", TopUp: true}
	// A breaker that effectively never opens and a deep retry budget: the
	// chaos phase measures reconciliation, not refusal.
	client := func(url string) (*platform.Client, error) {
		return platform.NewClient(platform.Config{
			BaseURL:          url,
			Timeout:          5 * time.Second,
			RetryBudget:      100000,
			FailureThreshold: 1000,
			BackoffBase:      time.Millisecond,
			BackoffCap:       4 * time.Millisecond,
			JitterSeed:       42,
		})
	}

	fmt.Fprintf(w, "platform smoke test: %d tasks, seed %d\n", tasks, seed)

	clean, err := testplatform.New(testplatform.Options{Seed: seed})
	if err != nil {
		return err
	}
	defer clean.Close()
	cc, err := client(clean.URL())
	if err != nil {
		return err
	}
	cleanRep, err := executor.ExecuteContext(context.Background(), cc.Runner(), in, plan, truth, opts)
	if err != nil {
		return err
	}
	if cleanRep.Degraded {
		return fmt.Errorf("fault-free run degraded: %s", cleanRep.LastError)
	}

	faulty, err := testplatform.New(testplatform.Options{
		Seed: seed,
		Faults: testplatform.FaultSchedule{
			DelayProb:    0.05,
			Delay:        time.Millisecond,
			FailProb:     0.08,
			TruncateProb: 0.06,
			DropProb:     0.06,
		},
	})
	if err != nil {
		return err
	}
	defer faulty.Close()
	fc, err := client(faulty.URL())
	if err != nil {
		return err
	}
	start := time.Now()
	faultyRep, err := executor.ExecuteContext(context.Background(), fc.Runner(), in, plan, truth, opts)
	if err != nil {
		return err
	}
	chaos := time.Since(start)
	if faultyRep.Degraded {
		return fmt.Errorf("chaos run degraded: %s", faultyRep.LastError)
	}
	if !reflect.DeepEqual(cleanRep, faultyRep) {
		return fmt.Errorf("chaos run diverged from the fault-free run:\nclean:  %+v\nfaulty: %+v", cleanRep, faultyRep)
	}
	if got := faulty.Charged(); got != faultyRep.Spent {
		return fmt.Errorf("double-pay: marketplace charged %v, report spent %v", got, faultyRep.Spent)
	}
	if faulty.Replays() == 0 {
		return fmt.Errorf("fault schedule produced no idempotent replays; the smoke is not exercising reconciliation")
	}
	fmt.Fprintf(w, "  chaos parity: %d bins, spent %.4f == charged %.4f, %d requests (%d replays) in %v\n",
		faultyRep.BinsIssued, faultyRep.Spent, faulty.Charged(), faulty.Requests(), faulty.Replays(), chaos.Round(time.Millisecond))

	bench := platformBench{
		Tasks:      tasks,
		BinsIssued: faultyRep.BinsIssued,
		Spent:      faultyRep.Spent,
		Charged:    faulty.Charged(),
		Requests:   faulty.Requests(),
		Replays:    faulty.Replays(),
		ChaosMS:    float64(chaos) / float64(time.Millisecond),
	}

	if err := platformDegradeSmoke(w, &bench); err != nil {
		return err
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", jsonPath)
	}
	fmt.Fprintln(w, "platform smoke test PASSED")
	return nil
}

// platformDegradeSmoke kills the marketplace mid-run under a daemon-wide
// client and asserts clean degradation: the job settles Done with a
// partial degraded report, every committed bin is paid exactly once, and
// the readiness probe answers 200 with the platform block degraded.
func platformDegradeSmoke(w io.Writer, bench *platformBench) error {
	tp, err := testplatform.New(testplatform.Options{Seed: 11})
	if err != nil {
		return err
	}
	defer tp.Close()
	svc := service.New(service.Config{Workers: 2, Logger: log.New(io.Discard, "", 0),
		PlatformURL: tp.URL(), PlatformRetries: 2})
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	const killAfter = 5
	tp.KillAfter(killAfter)
	menu := binset.MustJelly(20)
	in, err := core.NewHomogeneous(menu, 200, 0.9)
	if err != nil {
		return err
	}
	id, err := svc.Jobs().Submit(service.JobRequest{Run: &service.RunJob{
		Instance: in,
		Platform: service.PlatformSpec{Kind: "remote"},
		Options:  executor.Options{TopUp: true},
	}})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	var st service.JobStatus
	for {
		if st, err = svc.Jobs().Status(id); err != nil {
			return err
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("degradation run stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != service.JobDone || st.Report == nil || !st.Report.Degraded {
		return fmt.Errorf("want a Done job with a degraded report after marketplace death, got %s (report %+v)", st.State, st.Report)
	}
	if st.Report.BinsIssued != killAfter {
		return fmt.Errorf("degraded run issued %d bins, want %d (the marketplace served exactly that many)", st.Report.BinsIssued, killAfter)
	}
	if got := tp.Charged(); got != st.Report.Spent {
		return fmt.Errorf("degraded double-pay: charged %v, spent %v", got, st.Report.Spent)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz %d with the marketplace down, want degraded-but-200", resp.StatusCode)
	}
	if h.Platform == nil || !h.Platform.Degraded {
		return fmt.Errorf("healthz platform block not degraded: %+v", h.Platform)
	}
	bench.DegradedBins = st.Report.BinsIssued
	bench.DegradedSpent = st.Report.Spent
	fmt.Fprintf(w, "  degradation: marketplace died after %d bins; run settled degraded (spent %.4f, paid once), healthz 200\n",
		killAfter, st.Report.Spent)
	return nil
}
