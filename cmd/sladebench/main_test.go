package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "7a", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 7a") || !strings.Contains(out, "Figure 7b") {
		t.Errorf("expected the 7a/7b pair, got:\n%s", out)
	}
	if !strings.Contains(out, "OPQ-Extended") {
		t.Error("heterogeneous figures must include OPQ-Extended")
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "7x", true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dist,Greedy,OPQ-Extended,Baseline") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "99z", false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := runServeSmoke(&buf); err != nil {
		t.Fatalf("serve smoke failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"cold decompose", "warm decompose", "async job", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}
}
