package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "7a", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 7a") || !strings.Contains(out, "Figure 7b") {
		t.Errorf("expected the 7a/7b pair, got:\n%s", out)
	}
	if !strings.Contains(out, "OPQ-Extended") {
		t.Error("heterogeneous figures must include OPQ-Extended")
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "7x", true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dist,Greedy,OPQ-Extended,Baseline") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "99z", false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := runServeSmoke(&buf, jsonPath); err != nil {
		t.Fatalf("serve smoke failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"cold decompose", "warm decompose", "async job", "run job", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench json not written: %v", err)
	}
	var bench struct {
		ColdMS         float64 `json:"cold_ms"`
		WarmAvgMS      float64 `json:"warm_avg_ms"`
		RunMS          float64 `json:"run_ms"`
		RunReliability float64 `json:"run_reliability"`
		RunBinsIssued  int     `json:"run_bins_issued"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench json unparsable: %v\n%s", err, data)
	}
	if bench.ColdMS <= 0 || bench.WarmAvgMS <= 0 || bench.RunMS <= 0 {
		t.Errorf("bench json missing measurements: %+v", bench)
	}
	if bench.RunBinsIssued <= 0 || bench.RunReliability <= 0 {
		t.Errorf("run measurements empty: %+v", bench)
	}
}
