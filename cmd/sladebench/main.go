// Command sladebench regenerates the figures of the SLADE paper's
// evaluation (Section 7) as text tables or CSV.
//
// Usage:
//
//	sladebench -fig all            # every figure (6a-6l, 7a-7d, 8a-8b)
//	sladebench -fig 6a             # one figure
//	sladebench -fig 6i -csv        # CSV output
//	sladebench -serve              # smoke-test the decomposition service
//	sladebench -serve -bench-json BENCH_serve.json  # + machine-readable results
//	sladebench -solve-bench -solve-json BENCH_solve.json -solve-alloc-budget 24
//	                               # hot-path solve benchmark + allocs/op gate
//	sladebench -metrics            # smoke-test the /metrics exposition
//	sladebench -cluster            # smoke-test the multi-node cluster fan-out
//
// -serve boots an in-process sladed service, fires warm- and cold-cache
// decompose requests plus an async solve job and a "kind":"run" execution
// job through the HTTP API, and prints the latency gap and the /v1/stats
// counters — a one-command sanity check that the serving layer works on
// this machine. -bench-json additionally writes the measurements (cold/warm
// latency, speedup, job and run round trips, achieved reliability) as JSON,
// which CI uploads as an artifact to accumulate a perf trajectory.
//
// -solve-bench benchmarks the decomposition hot path itself (no HTTP): the
// cold build+solve, the cached compact-run solve, the lazy materialization,
// and the pre-PR per-use baseline, each with ns/op and allocs/op.
// -solve-json writes the measurements (CI uploads BENCH_solve.json), and
// -solve-alloc-budget fails the run if the cached solve+materialize path
// allocates more than the committed budget per op — the regression gate for
// the zero-allocation pipeline.
//
// -metrics is the observability gate CI runs: it boots the service, drives
// one request through every HTTP route (including an executed run job),
// scrapes GET /metrics, and validates the payload with the in-repo
// Prometheus exposition linter — every route series and every per-stage
// metric family must be present. The -serve smoke also scrapes /metrics
// under warm decompose load and records the scrape latency in its JSON.
//
// -cluster boots an in-process 3-node sladed cluster (real HTTP between
// nodes), fans one large decompose across it, kills a peer, and repeats —
// asserting both times that the clustered cost exactly equals a
// single-node solve of the same instance. -cluster-json writes the
// measurements (healthy vs degraded latency, span and fallback counters).
//
// Figure identifiers follow the paper: 6a/6c (Jelly, t vs cost/time),
// 6b/6d (SMIC), 6e/6g and 6f/6h (|B| sweeps), 6i/6k and 6j/6l (scalability),
// 7a/7b (σ), 7c/7d (µ), 8a/8b (heterogeneous scalability). Figure pairs are
// produced together (asking for 6a also prints 6c, etc.).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id (6a..6l, 7a..7d, 8a, 8b) or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	serve := flag.Bool("serve", false, "smoke-test the decomposition service instead of regenerating figures")
	benchJSON := flag.String("bench-json", "", "with -serve, also write the measurements as JSON to this path")
	solve := flag.Bool("solve-bench", false, "benchmark the decomposition hot path (cold vs cached, allocs/op) instead of regenerating figures")
	solveJSON := flag.String("solve-json", "", "with -solve-bench, also write the measurements as JSON to this path")
	solveBudget := flag.Int64("solve-alloc-budget", 0, "with -solve-bench, fail if cached solve+materialize exceeds this many allocs/op (0 = no gate)")
	metrics := flag.Bool("metrics", false, "smoke-test the /metrics exposition: drive every route, scrape, and lint")
	clusterSmoke := flag.Bool("cluster", false, "smoke-test the multi-node cluster: 3-node fan-out, peer kill, cost parity")
	clusterJSON := flag.String("cluster-json", "", "with -cluster, also write the measurements as JSON to this path")
	platformSmoke := flag.Bool("platform", false, "smoke-test the remote bin marketplace: chaos spend parity, mid-run death degradation")
	platformJSON := flag.String("platform-json", "", "with -platform, also write the measurements as JSON to this path")
	flag.Parse()

	if *platformSmoke {
		if err := runPlatformSmoke(os.Stdout, *platformJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sladebench:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterSmoke {
		if err := runClusterSmoke(os.Stdout, *clusterJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sladebench:", err)
			os.Exit(1)
		}
		return
	}
	if *metrics {
		if err := runMetricsSmoke(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sladebench:", err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		if err := runServeSmoke(os.Stdout, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sladebench:", err)
			os.Exit(1)
		}
		return
	}
	if *solve {
		if err := runSolveBench(os.Stdout, *solveJSON, *solveBudget); err != nil {
			fmt.Fprintln(os.Stderr, "sladebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *fig, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "sladebench:", err)
		os.Exit(1)
	}
}

// run executes the requested figure group(s) and writes them to w.
func run(w io.Writer, fig string, csv bool) error {
	type job struct {
		ids []string
		fn  func() ([]experiments.Figure, error)
	}
	jobs := []job{
		{[]string{"6a", "6c"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6T(experiments.Jelly)) }},
		{[]string{"6b", "6d"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6T(experiments.SMIC)) }},
		{[]string{"6e", "6g"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6B(experiments.Jelly)) }},
		{[]string{"6f", "6h"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6B(experiments.SMIC)) }},
		{[]string{"6i", "6k"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6N(experiments.Jelly)) }},
		{[]string{"6j", "6l"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig6N(experiments.SMIC)) }},
		{[]string{"7a", "7b"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig7Sigma()) }},
		{[]string{"7c", "7d"}, func() ([]experiments.Figure, error) { return pair(experiments.Fig7Mu()) }},
		{[]string{"8a"}, func() ([]experiments.Figure, error) { return single(experiments.Fig8(experiments.Jelly)) }},
		{[]string{"8b"}, func() ([]experiments.Figure, error) { return single(experiments.Fig8(experiments.SMIC)) }},
		// 7x/7y regenerate the distribution study Section 7.2 mentions and
		// omits (uniform and heavy-tailed threshold workloads).
		{[]string{"7x", "7y"}, func() ([]experiments.Figure, error) { return pair(experiments.DistributionStudy(experiments.DefaultN)) }},
	}

	matched := false
	for _, j := range jobs {
		if fig != "all" && !contains(j.ids, fig) {
			continue
		}
		matched = true
		figs, err := j.fn()
		if err != nil {
			return err
		}
		for _, f := range figs {
			if csv {
				fmt.Fprintf(w, "# Figure %s — %s\n%s\n", f.ID, f.Title, f.CSV())
			} else {
				fmt.Fprintln(w, f.Render())
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func pair(a, b experiments.Figure, err error) ([]experiments.Figure, error) {
	return []experiments.Figure{a, b}, err
}

func single(a experiments.Figure, err error) ([]experiments.Figure, error) {
	return []experiments.Figure{a}, err
}

func contains(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
