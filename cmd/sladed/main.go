// Command sladed is the SLADE decomposition daemon: a long-running HTTP
// service that decomposes large-scale crowdsourcing tasks on demand,
// amortizing Optimal Priority Queue construction across requests and
// sharding big instances over all CPU cores.
//
// Usage:
//
//	sladed                     # listen on :8080
//	sladed -addr :9090         # custom listen address
//	sladed -cache 256          # queue-cache capacity
//	sladed -workers 8          # shard worker-pool size
//
// Endpoints (JSON): POST /v1/decompose, POST /v1/jobs, GET /v1/jobs/{id},
// DELETE /v1/jobs/{id}, GET /v1/healthz, GET /v1/stats. See the README's
// "Running sladed" section for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	slade "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 0, "queue-cache capacity (0 = default)")
	workers := flag.Int("workers", 0, "shard worker-pool size (0 = all CPUs)")
	maxJobs := flag.Int("max-jobs", 0, "concurrently running async jobs (0 = workers)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, slade.ServiceConfig{
		CacheSize: *cache,
		Workers:   *workers,
		MaxJobs:   *maxJobs,
	}, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "sladed:", err)
		os.Exit(1)
	}
}

// run serves the decomposition API on addr until ctx is canceled, then
// drains in-flight requests.
func run(ctx context.Context, addr string, cfg slade.ServiceConfig, logger *log.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, cfg, logger)
}

// serve runs the daemon on an existing listener; the testable core of main.
func serve(ctx context.Context, ln net.Listener, cfg slade.ServiceConfig, logger *log.Logger) error {
	svc := slade.NewService(cfg)
	srv := &http.Server{
		Handler:           slade.NewServiceHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("sladed listening on %s (workers=%d)", ln.Addr(), svc.Stats().Workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("sladed shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
