// Command sladed is the SLADE decomposition daemon: a long-running HTTP
// service that decomposes large-scale crowdsourcing tasks on demand,
// amortizing Optimal Priority Queue construction across requests,
// sharding big instances over all CPU cores, executing plans end to end
// against a simulated crowd platform ("kind":"run" jobs, reported with
// achieved reliability and itemized spend), and (with -data-dir)
// persisting completed jobs — execution reports included — and the OPQ
// cache so a restart loses nothing.
//
// Usage:
//
//	sladed                        # listen on :8080, in-memory only
//	sladed -addr :9090            # custom listen address
//	sladed -cache 256             # queue-cache capacity
//	sladed -workers 8             # shard worker-pool size
//	sladed -data-dir /var/slade   # durable job + cache state
//	sladed -result-ttl 24h        # evict terminal jobs after 24 hours
//	sladed -snapshot-interval 5m  # snapshot the OPQ cache every 5 minutes
//	sladed -batch-window 0        # disable same-menu request batching
//	sladed -batch-max 64          # flush a batch after 64 requests
//	sladed -max-queue-wait 250ms  # shed solve traffic when queue-wait p95 exceeds 250ms
//	sladed -sse-heartbeat 15s     # SSE keep-alive comment interval for /v1/jobs/{id}/events
//	sladed -log-json              # structured request logs as JSON lines
//	sladed -peers http://b:8080,http://c:8080 -advertise http://a:8080
//	                              # clustered: fan shards out to peers b and c
//	sladed -cluster-timeout 10s   # per-attempt remote span solve deadline
//	sladed -peer-retries 1        # re-send a failed span once before local fallback
//	sladed -platform-url http://market:9000 -platform-auth "Bearer t"
//	                              # remote marketplace for "platform_kind":"remote" runs
//	sladed -platform-timeout 10s -platform-retries 64 -platform-rps 50
//	                              # per-attempt deadline, per-job retry budget, rate cap
//
// With -platform-url set, run jobs may name "platform_kind":"remote" to
// issue bins over HTTP against a crowd marketplace instead of in-process
// crowdsim. Issues are idempotent (keyed by job, bin and attempt epoch),
// retried with jittered backoff under a per-job budget, rate-limited, and
// circuit-broken; a marketplace outage degrades the run to a partial
// report ("degraded": true) instead of failing it, /v1/stats grows a
// "platform" block, and /v1/healthz reports marketplace reachability
// without ever failing the probe.
//
// With -peers set, homogeneous solves are split into block-aligned spans
// and fanned out across the peer ring (consistent hash of the menu
// fingerprint, so each node's OPQ cache stays hot for the menus it owns).
// Peer failures fall back to local solves — the merged plan is
// byte-identical to a single-node solve either way — and persistent
// failures circuit-break the peer until a cooldown probe succeeds.
// /v1/stats grows a "cluster" block and /v1/healthz reports per-peer
// breaker state.
//
// By default the daemon coalesces concurrent same-menu decompose traffic
// into shared block-aligned solves (-batch-window 2ms): requests sharing
// a menu fingerprint accumulate briefly and are served by one solve, each
// caller's plan costing exactly what its unbatched solve would.
//
// Every pipeline stage is instrumented: GET /metrics exposes Prometheus
// text-format counters and histograms for the HTTP layer, OPQ cache,
// batcher, solver pool, executor, and store, and every request is logged
// with a propagated X-Request-ID. With -max-queue-wait set, the daemon
// sheds solve-submitting traffic (429 + Retry-After) once the solver
// pool's queue-wait p95 crosses the limit.
//
// Endpoints (JSON): POST /v1/decompose, POST /v1/decompose/batch,
// POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events (SSE),
// DELETE /v1/jobs/{id}, POST /v1/streams, POST /v1/streams/{id}/tasks,
// POST /v1/streams/{id}/flush, GET /v1/streams/{id},
// DELETE /v1/streams/{id}, POST /v1/admin/snapshot, GET /v1/healthz,
// GET /v1/stats, GET /metrics (Prometheus text). See docs/OPERATIONS.md
// for the full flag reference, curl examples and the restart-recovery
// runbook; docs/API.md is the wire reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	slade "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 0, "queue-cache capacity (0 = default)")
	workers := flag.Int("workers", 0, "shard worker-pool size (0 = all CPUs)")
	maxJobs := flag.Int("max-jobs", 0, "concurrently running async jobs (0 = workers)")
	dataDir := flag.String("data-dir", "", "durable state directory; empty keeps all state in memory")
	resultTTL := flag.Duration("result-ttl", 0, "evict terminal jobs this long after they finish (0 = keep until deleted)")
	snapInterval := flag.Duration("snapshot-interval", 0, "periodically persist the OPQ cache (0 = only at shutdown and on POST /v1/admin/snapshot)")
	batchWindow := flag.Duration("batch-window", slade.DefaultBatchWindow, "coalesce concurrent same-menu requests for up to this long into one shared solve (0 = disable batching)")
	batchMax := flag.Int("batch-max", 0, "flush a batch once this many requests joined (0 = default 256)")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "shed solve traffic (429 + Retry-After) when solver queue-wait p95 exceeds this (0 = never shed)")
	sseHeartbeat := flag.Duration("sse-heartbeat", 0, "keep-alive comment interval on SSE event streams (0 = 15s default)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	peers := flag.String("peers", "", "comma-separated peer base URLs; non-empty enables clustered shard fan-out")
	advertise := flag.String("advertise", "", "this node's own base URL on the cluster ring (required with -peers when peers list this node back)")
	clusterTimeout := flag.Duration("cluster-timeout", 0, "per-attempt deadline for one remote span solve (0 = 10s default)")
	peerRetries := flag.Int("peer-retries", 1, "re-send a failed span to its peer this many times before local fallback")
	platformURL := flag.String("platform-url", "", "remote crowd-marketplace base URL; non-empty lets run jobs execute with \"platform_kind\":\"remote\"")
	platformAuth := flag.String("platform-auth", "", "Authorization header sent verbatim on every marketplace request")
	platformTimeout := flag.Duration("platform-timeout", 0, "per-attempt deadline for one remote bin issue (0 = 10s default)")
	platformRetries := flag.Int("platform-retries", 0, "per-job wire-retry budget for marketplace calls (0 = 64 default, -1 = no retries)")
	platformRPS := flag.Float64("platform-rps", 0, "marketplace issue-rate cap in requests/second (0 = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := daemonConfig{
		service: slade.ServiceConfig{
			CacheSize:        *cache,
			Workers:          *workers,
			MaxJobs:          *maxJobs,
			ResultTTL:        *resultTTL,
			BatchWindow:      *batchWindow,
			BatchMaxRequests: *batchMax,
			MaxQueueWait:     *maxQueueWait,
			SSEHeartbeat:     *sseHeartbeat,
			Peers:            splitPeers(*peers),
			ClusterSelf:      *advertise,
			ClusterTimeout:   *clusterTimeout,
			PeerRetries:      *peerRetries,
			PlatformURL:      *platformURL,
			PlatformAuth:     *platformAuth,
			PlatformTimeout:  *platformTimeout,
			PlatformRetries:  *platformRetries,
			PlatformRPS:      *platformRPS,
		},
		dataDir:          *dataDir,
		snapshotInterval: *snapInterval,
	}
	if *logJSON {
		cfg.service.Slog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if err := run(ctx, *addr, cfg, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "sladed:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag: comma-separated URLs, blanks dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// daemonConfig bundles the service configuration with the daemon-level
// durability knobs.
type daemonConfig struct {
	service slade.ServiceConfig
	// dataDir roots the filesystem store; empty disables persistence.
	dataDir string
	// snapshotInterval spaces periodic OPQ cache snapshots; <= 0 snapshots
	// only at shutdown and on explicit admin requests.
	snapshotInterval time.Duration
}

// run serves the decomposition API on addr until ctx is canceled, then
// drains in-flight requests.
func run(ctx context.Context, addr string, cfg daemonConfig, logger *log.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, cfg, logger)
}

// serve runs the daemon on an existing listener; the testable core of
// main. With a data dir configured it opens the filesystem store, replays
// persisted jobs, warm-loads the OPQ cache from the last snapshot, and
// snapshots the cache periodically and at shutdown.
func serve(ctx context.Context, ln net.Listener, cfg daemonConfig, logger *log.Logger) error {
	svcCfg := cfg.service
	svcCfg.Logger = logger
	// Catch a typo'd -platform-url here with a flag-shaped error; the
	// service constructor treats an invalid URL as a programming error.
	if u := svcCfg.PlatformURL; u != "" &&
		!strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return fmt.Errorf("-platform-url %q is not an http(s) URL", u)
	}
	if cfg.dataDir != "" {
		st, err := slade.OpenFSStore(cfg.dataDir, logger)
		if err != nil {
			return err
		}
		svcCfg.Store = st
	}
	svc := slade.NewService(svcCfg)
	defer svc.Close()

	if cfg.dataDir != "" {
		loaded, err := svc.LoadCacheSnapshot()
		if err != nil {
			logger.Printf("sladed: warning: loading cache snapshot: %v", err)
		} else if loaded > 0 {
			logger.Printf("sladed: warm boot: %d cached queues restored", loaded)
		}
		if rec := svc.Stats().Jobs.Recovered; rec > 0 {
			logger.Printf("sladed: warm boot: %d persisted jobs recovered", rec)
		}
	}

	srv := &http.Server{
		Handler:           slade.NewServiceHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("sladed listening on %s (workers=%d, durable=%v, batch-window=%v, peers=%d)",
		ln.Addr(), svc.Stats().Workers, cfg.dataDir != "", cfg.service.BatchWindow, len(cfg.service.Peers))

	// The snapshot loop runs on a child context so it also stops when
	// Serve fails on its own (fatal accept error) rather than only on a
	// signal — otherwise waiting on snapDone below would deadlock.
	loopCtx, loopCancel := context.WithCancel(ctx)
	defer loopCancel()
	snapDone := startSnapshotLoop(loopCtx, svc, cfg, logger)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		loopCancel()
		<-snapDone
		return err
	case <-ctx.Done():
	}
	logger.Printf("sladed shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-snapDone
	if cfg.dataDir != "" {
		// Final snapshot so the next boot starts as warm as this process
		// ended. Failures are logged, not fatal: job records were already
		// durable the moment each job settled.
		if info, err := svc.SaveCacheSnapshot(); err != nil {
			logger.Printf("sladed: warning: shutdown snapshot: %v", err)
		} else {
			logger.Printf("sladed: shutdown snapshot: %d queues, %d bytes", info.Entries, info.Bytes)
		}
	}
	return nil
}

// startSnapshotLoop persists the OPQ cache on the configured interval
// until ctx is canceled; the returned channel closes when the loop exits.
// Without a store or an interval it is a no-op.
func startSnapshotLoop(ctx context.Context, svc *slade.Service, cfg daemonConfig, logger *log.Logger) <-chan struct{} {
	done := make(chan struct{})
	if cfg.dataDir == "" || cfg.snapshotInterval <= 0 {
		close(done)
		return done
	}
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.snapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if info, err := svc.SaveCacheSnapshot(); err != nil {
					logger.Printf("sladed: warning: periodic snapshot: %v", err)
				} else {
					logger.Printf("sladed: snapshot: %d queues, %d bytes", info.Entries, info.Bytes)
				}
			}
		}
	}()
	return done
}
