package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"

	slade "repro"
)

// TestServeEndToEnd boots the daemon on an ephemeral port, exercises the
// round trip a deployment would (health, decompose, stats), and checks
// graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, ln, slade.ServiceConfig{CacheSize: 16, Workers: 2}, log.New(io.Discard, "", 0))
	}()

	waitHealthy(t, base)

	body := `{"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1},
		{"cardinality":2,"confidence":0.85,"cost":0.18},
		{"cardinality":3,"confidence":0.8,"cost":0.24}],
		"n":120,"threshold":0.95}`
	resp, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Solver  string `json:"solver"`
		Summary struct {
			Cost float64 `json:"cost"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dr.Summary.Cost <= 0 {
		t.Fatalf("decompose: %d %+v", resp.StatusCode, dr)
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st slade.ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests != 1 || st.Cache.Builds != 1 {
		t.Fatalf("stats: %+v", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// TestRunBadAddr covers the listener-error path.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:-1", slade.ServiceConfig{}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("want listen error")
	}
}
