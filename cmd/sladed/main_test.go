package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"

	slade "repro"
)

// TestServeEndToEnd boots the daemon on an ephemeral port, exercises the
// round trip a deployment would (health, decompose, stats), and checks
// graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		cfg := daemonConfig{service: slade.ServiceConfig{CacheSize: 16, Workers: 2}}
		done <- serve(ctx, ln, cfg, log.New(io.Discard, "", 0))
	}()

	waitHealthy(t, base)

	body := `{"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1},
		{"cardinality":2,"confidence":0.85,"cost":0.18},
		{"cardinality":3,"confidence":0.8,"cost":0.24}],
		"n":120,"threshold":0.95}`
	resp, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Solver  string `json:"solver"`
		Summary struct {
			Cost float64 `json:"cost"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dr.Summary.Cost <= 0 {
		t.Fatalf("decompose: %d %+v", resp.StatusCode, dr)
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st slade.ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests != 1 || st.Cache.Builds != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Persistence.Enabled {
		t.Fatalf("persistence reported enabled without -data-dir: %+v", st.Persistence)
	}

	// Snapshot without a store must 409, not crash.
	snapResp, err := http.Post(base+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapResp.Body.Close()
	if snapResp.StatusCode != http.StatusConflict {
		t.Fatalf("admin snapshot without store: want 409, got %d", snapResp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestRestartRecovery is the durability acceptance test: a daemon started
// with -data-dir, killed after N completed jobs, and restarted must serve
// all N results from GET /v1/jobs/{id} and report a warm (non-empty) OPQ
// cache in /v1/stats without rebuilding a single queue.
func TestRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()
	cfg := daemonConfig{
		service: slade.ServiceConfig{CacheSize: 16, Workers: 2},
		dataDir: dataDir,
	}
	const numJobs = 3

	// First life: complete numJobs jobs, snapshot via the admin endpoint,
	// then shut down (which also snapshots).
	base, shutdown := startDaemon(t, cfg)
	jobIDs := make([]string, 0, numJobs)
	for i := 0; i < numJobs; i++ {
		body := fmt.Sprintf(`{"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1},
			{"cardinality":2,"confidence":0.85,"cost":0.18}],
			"n":%d,"threshold":0.9}`, 100+10*i)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || st.ID == "" {
			t.Fatalf("submit job: %d %+v", resp.StatusCode, st)
		}
		jobIDs = append(jobIDs, st.ID)
	}
	for _, id := range jobIDs {
		waitJobDone(t, base, id)
	}

	snapResp, err := http.Post(base+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Entries int `json:"entries"`
		Bytes   int `json:"bytes"`
	}
	if err := json.NewDecoder(snapResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snapResp.Body.Close()
	if snapResp.StatusCode != http.StatusOK || snap.Entries == 0 || snap.Bytes == 0 {
		t.Fatalf("admin snapshot: %d %+v", snapResp.StatusCode, snap)
	}

	shutdown()

	// Second life: same data dir, fresh process state.
	base, shutdown = startDaemon(t, cfg)
	defer shutdown()

	for _, id := range jobIDs {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?include_plan=true")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State   string `json:"state"`
			Solver  string `json:"solver"`
			Summary *struct {
				Cost float64 `json:"cost"`
			} `json:"summary"`
			Plan []struct {
				Cardinality int   `json:"cardinality"`
				Tasks       []int `json:"tasks"`
			} `json:"plan"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s after restart: status %d", id, resp.StatusCode)
		}
		if st.State != "done" || st.Summary == nil || st.Summary.Cost <= 0 || len(st.Plan) == 0 {
			t.Fatalf("job %s after restart: %+v", id, st)
		}
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st slade.ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !st.Persistence.Enabled {
		t.Fatalf("persistence not enabled: %+v", st.Persistence)
	}
	if st.Cache.Entries == 0 {
		t.Fatalf("cache cold after restart: %+v", st.Cache)
	}
	if st.Cache.Builds != 0 {
		t.Fatalf("restart rebuilt %d queues instead of warm-loading: %+v", st.Cache.Builds, st.Cache)
	}
	if st.Jobs.Recovered != numJobs {
		t.Fatalf("want %d recovered jobs, got %d", numJobs, st.Jobs.Recovered)
	}
}

// TestRunJobRestartRecovery is the executor-backed acceptance test: a
// daemon killed after N completed run jobs must, on warm boot, serve all
// N execution reports verbatim with zero re-executions (the run counters
// stay at zero — reports are replayed from the store, never re-run).
func TestRunJobRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()
	cfg := daemonConfig{
		service: slade.ServiceConfig{CacheSize: 16, Workers: 2},
		dataDir: dataDir,
	}
	const numJobs = 3

	type report struct {
		Platform   string  `json:"platform"`
		Seed       int64   `json:"seed"`
		Spent      float64 `json:"spent"`
		BinsIssued int     `json:"bins_issued"`
		Covered    int     `json:"covered_tasks"`
		Empirical  float64 `json:"empirical_reliability"`
	}
	type jobView struct {
		State  string  `json:"state"`
		Kind   string  `json:"kind"`
		Report *report `json:"report"`
	}

	// First life: run numJobs "kind":"run" jobs to completion.
	base, shutdown := startDaemon(t, cfg)
	firstReports := make(map[string]report, numJobs)
	ids := make([]string, 0, numJobs)
	for i := 0; i < numJobs; i++ {
		body := fmt.Sprintf(`{"kind":"run",
			"bins":[{"cardinality":1,"confidence":0.9,"cost":0.1},
				{"cardinality":2,"confidence":0.85,"cost":0.18}],
			"n":%d,"threshold":0.9,
			"run":{"platform":"jelly","seed":%d}}`, 40+10*i, 100+i)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || st.ID == "" {
			t.Fatalf("submit run job: %d %+v", resp.StatusCode, st)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitJobDone(t, base, id)
		var jv jobView
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jv.Report == nil || jv.Report.BinsIssued == 0 {
			t.Fatalf("job %s finished without a report: %+v", id, jv)
		}
		firstReports[id] = *jv.Report
	}
	shutdown()

	// Second life: every report is served verbatim, nothing re-executes.
	base, shutdown = startDaemon(t, cfg)
	defer shutdown()
	for _, id := range ids {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jv jobView
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || jv.State != "done" || jv.Kind != "run" {
			t.Fatalf("job %s after restart: %d %+v", id, resp.StatusCode, jv)
		}
		if jv.Report == nil || *jv.Report != firstReports[id] {
			t.Fatalf("job %s report changed across restart:\nbefore %+v\nafter  %+v", id, firstReports[id], jv.Report)
		}
	}
	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st slade.ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Jobs.Recovered != numJobs {
		t.Fatalf("want %d recovered run jobs, got %d", numJobs, st.Jobs.Recovered)
	}
	if st.Jobs.Runs != 0 || st.Jobs.RunBinsIssued != 0 {
		t.Fatalf("warm boot re-executed run jobs: %+v", st.Jobs)
	}
}

// startDaemon boots serve on an ephemeral port and returns the base URL
// and a shutdown func that waits for a clean exit.
func startDaemon(t *testing.T, cfg daemonConfig) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, cfg, log.New(io.Discard, "", 0)) }()
	waitHealthy(t, base)
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// waitJobDone polls a job until it settles Done.
func waitJobDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s settled %s: %s", id, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// TestRunBadAddr covers the listener-error path.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:-1", daemonConfig{}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("want listen error")
	}
}
