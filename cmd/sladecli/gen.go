package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	slade "repro"
)

// gen implements `sladecli gen`: write a SLADE instance JSON for a chosen
// menu and threshold workload, ready for `sladecli solve -in`.
func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 10_000, "number of atomic tasks")
	menuName := fs.String("menu", "jelly", "bin menu: jelly|smic|table1")
	maxCard := fs.Int("maxcard", 20, "maximum bin cardinality (jelly/smic menus)")
	dist := fs.String("dist", "homo", "threshold distribution: homo|normal|uniform|pareto")
	tFlag := fs.Float64("t", 0.9, "threshold (homo) or mean µ (normal)")
	sigma := fs.Float64("sigma", 0.03, "σ for the normal distribution")
	lo := fs.Float64("lo", 0.6, "lower bound for the uniform distribution")
	hi := fs.Float64("hi", 0.95, "upper bound for the uniform distribution")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	outPath := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var menu slade.BinSet
	var err error
	switch *menuName {
	case "jelly":
		menu, err = slade.JellyMenu(*maxCard)
	case "smic":
		menu, err = slade.SMICMenu(*maxCard)
	case "table1":
		menu = slade.Table1Menu()
	default:
		return fmt.Errorf("unknown menu %q", *menuName)
	}
	if err != nil {
		return err
	}

	var thresholds []float64
	bounds := slade.DefaultThresholdBounds
	switch *dist {
	case "homo":
		thresholds = slade.HomogeneousThresholds(*n, *tFlag)
	case "normal":
		thresholds, err = slade.NormalThresholds(*n, *tFlag, *sigma, bounds, *seed)
	case "uniform":
		thresholds, err = slade.UniformThresholds(*n, *lo, *hi, bounds, *seed)
	case "pareto":
		thresholds, err = slade.HeavyTailedThresholds(*n, 1.5, 0.02, bounds, *seed)
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	if err != nil {
		return err
	}

	in, err := slade.NewHeterogeneous(menu, thresholds)
	if err != nil {
		return err
	}
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d tasks × %d bins to %s\n", in.N(), menu.Len(), *outPath)
	return nil
}

// analyze implements `sladecli analyze`: solve an instance with every
// algorithm and print the comparative diagnostics, or analyze a saved plan.
func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	inPath := fs.String("in", "", "path to instance JSON (required)")
	planPath := fs.String("plan", "", "optional plan JSON; otherwise all algorithms are compared")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	var in slade.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}

	if *planPath != "" {
		pdata, err := os.ReadFile(*planPath)
		if err != nil {
			return err
		}
		var plan slade.Plan
		if err := json.Unmarshal(pdata, &plan); err != nil {
			return err
		}
		stats, err := slade.AnalyzePlan(&in, &plan)
		if err != nil {
			return err
		}
		fmt.Print(stats.String())
		return nil
	}

	solvers := []slade.Solver{slade.NewGreedy(), slade.NewBaseline(1)}
	if in.Homogeneous() {
		solvers = append(solvers, slade.NewOPQ())
	} else {
		solvers = append(solvers, slade.NewOPQExtended())
	}
	plans := make(map[string]*slade.Plan, len(solvers))
	for _, s := range solvers {
		p, err := s.Solve(&in)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
		plans[s.Name()] = p
	}
	out, err := slade.ComparePlans(&in, plans)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
