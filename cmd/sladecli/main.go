// Command sladecli solves SLADE instances from JSON and prints the paper's
// worked examples.
//
// Usage:
//
//	sladecli tables
//	    Print the running-example tables of the paper (Tables 1, 3, 4, 5)
//	    and the worked examples 4, 5, 9 and 11.
//
//	sladecli solve -in instance.json [-algo opq] [-out plan.json]
//	    Solve an instance. instance.json holds {"bins": [...],
//	    "thresholds": [...]} (see slade.Instance). Algorithms: greedy,
//	    opq, opq-extended, baseline, auto (default: auto — OPQ-Based for
//	    homogeneous instances, OPQ-Extended otherwise).
//
//	sladecli gen -n 10000 -menu jelly -dist normal -t 0.9 -sigma 0.03 -out in.json
//	    Generate an instance JSON: menus jelly|smic|table1, threshold
//	    distributions homo|normal|uniform|pareto.
//
//	sladecli analyze -in instance.json [-plan plan.json]
//	    Solve with every applicable algorithm and print side-by-side
//	    diagnostics (cost, ×LP bound, fill rate, slack), or analyze one
//	    saved plan in detail.
//
//	sladecli demo
//	    Solve the Example-4 running instance with every algorithm.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	slade "repro"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/opq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tables":
		err = tables()
	case "solve":
		err = solve(os.Args[2:])
	case "gen":
		err = gen(os.Args[2:])
	case "analyze":
		err = analyze(os.Args[2:])
	case "demo":
		err = demo()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sladecli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sladecli {tables|solve|gen|analyze|demo} [flags]")
}

// pickSolver maps an -algo flag value to a Solver.
func pickSolver(name string, in *slade.Instance) (slade.Solver, error) {
	switch name {
	case "greedy":
		return slade.NewGreedy(), nil
	case "opq":
		return slade.NewOPQ(), nil
	case "opq-extended":
		return slade.NewOPQExtended(), nil
	case "baseline":
		return slade.NewBaseline(1), nil
	case "auto":
		if in.Homogeneous() {
			return slade.NewOPQ(), nil
		}
		return slade.NewOPQExtended(), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func solve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	inPath := fs.String("in", "", "path to instance JSON (required)")
	algo := fs.String("algo", "auto", "greedy|opq|opq-extended|baseline|auto")
	outPath := fs.String("out", "", "optional path to write the plan JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	var in slade.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("parsing %s: %w", *inPath, err)
	}
	s, err := pickSolver(*algo, &in)
	if err != nil {
		return err
	}
	start := time.Now()
	plan, err := s.Solve(&in)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := plan.Validate(&in); err != nil {
		return fmt.Errorf("solver returned infeasible plan: %w", err)
	}
	sum, err := plan.Summarize(in.Bins())
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\n", s.Name())
	fmt.Printf("tasks:     %d\n", in.N())
	fmt.Printf("plan:      %s\n", sum)
	fmt.Printf("bin uses:  %d (%d assignments)\n", sum.NumUses, sum.NumAssignments)
	fmt.Printf("time:      %v\n", elapsed)
	if *outPath != "" {
		out, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", *outPath)
	}
	return nil
}

func tables() error {
	menu := slade.Table1Menu()
	fmt.Println("Table 1 — running-example task bins")
	fmt.Printf("%-14s%10s%10s%10s\n", "", "b1", "b2", "b3")
	fmt.Printf("%-14s%10d%10d%10d\n", "Cardinality", 1, 2, 3)
	fmt.Printf("%-14s%10.2f%10.2f%10.2f\n", "Confidence",
		mustBin(menu, 1).Confidence, mustBin(menu, 2).Confidence, mustBin(menu, 3).Confidence)
	fmt.Printf("%-14s%10.2f%10.2f%10.2f\n\n", "Cost (USD)",
		mustBin(menu, 1).Cost, mustBin(menu, 2).Cost, mustBin(menu, 3).Cost)

	for _, tc := range []struct {
		label string
		t     float64
	}{
		{"Table 3 — OPQ at t=0.95", 0.95},
		{"Table 4 — OPQ0 at t=0.632", 0.632},
		{"Table 5 — OPQ1 at t=0.86", 0.86},
	} {
		q, err := opq.Build(menu, tc.t)
		if err != nil {
			return err
		}
		fmt.Println(tc.label)
		printQueue(q)
		fmt.Println()
	}
	return nil
}

func printQueue(q *opq.Queue) {
	fmt.Printf("%-8s", "Comb")
	for _, e := range q.Elems {
		fmt.Printf("%14s", e.String())
	}
	fmt.Printf("\n%-8s", "UC")
	for _, e := range q.Elems {
		fmt.Printf("%14.2f", e.UC)
	}
	fmt.Printf("\n%-8s", "LCM")
	for _, e := range q.Elems {
		fmt.Printf("%14d", e.LCM)
	}
	fmt.Println()
}

func demo() error {
	menu := slade.Table1Menu()
	fmt.Println("Running example: 4 atomic tasks, Table-1 menu, t = 0.95")
	fmt.Println("(paper: optimal 0.66, Greedy 0.74, OPQ-Based 0.68)")
	in, err := slade.NewHomogeneous(menu, 4, 0.95)
	if err != nil {
		return err
	}
	for _, s := range []slade.Solver{slade.NewGreedy(), slade.NewOPQ(), slade.NewBaseline(1)} {
		if err := runOne(s, in, menu); err != nil {
			return err
		}
	}
	fmt.Println("\nHeterogeneous example (Examples 10-11): thresholds 0.5/0.6/0.7/0.86")
	fmt.Println("(paper: OPQ-Extended plan {{a1,a2},{a3},{a4}} costing 0.38)")
	hin, err := slade.NewHeterogeneous(menu, []float64{0.5, 0.6, 0.7, 0.86})
	if err != nil {
		return err
	}
	return runOne(hetero.Solver{}, hin, menu)
}

func runOne(s core.Solver, in *core.Instance, menu core.BinSet) error {
	plan, err := s.Solve(in)
	if err != nil {
		return err
	}
	if err := plan.Validate(in); err != nil {
		return fmt.Errorf("%s: infeasible: %w", s.Name(), err)
	}
	sum, err := plan.Summarize(menu)
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s %s\n", s.Name()+":", sum)
	return nil
}

func mustBin(menu core.BinSet, l int) core.TaskBin {
	b, ok := menu.ByCardinality(l)
	if !ok {
		panic(fmt.Sprintf("missing bin %d", l))
	}
	return b
}
