package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	slade "repro"
)

func TestGenSolveAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.json")
	planPath := filepath.Join(dir, "plan.json")

	if err := gen([]string{"-n", "200", "-menu", "table1", "-dist", "normal",
		"-t", "0.9", "-sigma", "0.02", "-seed", "3", "-out", inPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	var in slade.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	if in.N() != 200 || in.Bins().Len() != 3 {
		t.Fatalf("generated instance: n=%d bins=%d", in.N(), in.Bins().Len())
	}

	if err := solve([]string{"-in", inPath, "-algo", "opq-extended", "-out", planPath}); err != nil {
		t.Fatal(err)
	}
	pdata, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	var plan slade.Plan
	if err := json.Unmarshal(pdata, &plan); err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(&in); err != nil {
		t.Fatalf("saved plan infeasible: %v", err)
	}

	if err := analyze([]string{"-in", inPath}); err != nil {
		t.Fatal(err)
	}
	if err := analyze([]string{"-in", inPath, "-plan", planPath}); err != nil {
		t.Fatal(err)
	}
}

func TestGenMenusAndDistributions(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-n", "50", "-menu", "jelly", "-maxcard", "10", "-dist", "homo", "-t", "0.9"},
		{"-n", "50", "-menu", "smic", "-maxcard", "10", "-dist", "uniform", "-lo", "0.7", "-hi", "0.9"},
		{"-n", "50", "-menu", "table1", "-dist", "pareto"},
	}
	for i, args := range cases {
		out := filepath.Join(dir, "x.json")
		if err := gen(append(args, "-out", out)); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
	if err := gen([]string{"-menu", "bogus", "-out", filepath.Join(dir, "y.json")}); err == nil {
		t.Error("unknown menu accepted")
	}
	if err := gen([]string{"-dist", "bogus", "-out", filepath.Join(dir, "y.json")}); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestSolveFlagsValidation(t *testing.T) {
	if err := solve([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := solve([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.json")
	if err := gen([]string{"-n", "10", "-menu", "table1", "-dist", "homo", "-t", "0.9", "-out", inPath}); err != nil {
		t.Fatal(err)
	}
	if err := solve([]string{"-in", inPath, "-algo", "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// opq on a homogeneous instance works via explicit flag too.
	if err := solve([]string{"-in", inPath, "-algo", "opq"}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if err := analyze([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := analyze([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTablesAndDemo(t *testing.T) {
	if err := tables(); err != nil {
		t.Fatal(err)
	}
	if err := demo(); err != nil {
		t.Fatal(err)
	}
}

func TestPickSolver(t *testing.T) {
	in, err := slade.NewHomogeneous(slade.Table1Menu(), 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pickSolver("auto", in)
	if err != nil || s.Name() != "OPQ-Based" {
		t.Errorf("auto(homo) = %v, %v", s, err)
	}
	hin, err := slade.NewHeterogeneous(slade.Table1Menu(), []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	s, err = pickSolver("auto", hin)
	if err != nil || s.Name() != "OPQ-Extended" {
		t.Errorf("auto(hetero) = %v, %v", s, err)
	}
}
