// Command sladesim regenerates the motivation experiments of Section 2 of
// the SLADE paper (Figure 3) on the simulated crowd marketplace: probe bins
// of cardinality 2..30 at each pay tier, reporting mean confidence and the
// overtime rate per point.
//
// Usage:
//
//	sladesim -fig 3a                  # Jelly, pay tiers 0.05/0.08/0.10
//	sladesim -fig 3b                  # SMIC,  pay tiers 0.05/0.10/0.20
//	sladesim -fig 3c                  # Jelly difficulty levels 1/2/3
//	sladesim -fig all -assignments 50 # smoother curves
//
// Points whose overtime rate exceeds 50% correspond to the dotted segments
// of the paper's Figure 3 and are flagged with '*'.
//
// With -matrix the command instead runs the scenario lab (internal/scenario):
// a seeded workload matrix through the full serving pipeline, emitting the
// machine-readable BENCH_scenarios.json and a reliability/cost/latency
// frontier table. See docs/SCENARIOS.md.
//
//	sladesim -matrix                          # full default matrix
//	sladesim -matrix -short                   # reduced CI smoke matrix
//	sladesim -matrix -cells adversarial,smic  # substring cell filter
//	sladesim -matrix -timing -out -           # timing blocks, stdout only
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "3a, 3b, 3c or 'all'")
	assignments := flag.Int("assignments", 10, "probe bins per design point (paper used 10)")
	seed := flag.Int64("seed", 1, "simulator RNG seed")
	matrix := flag.Bool("matrix", false, "run the scenario matrix instead of the figures")
	short := flag.Bool("short", false, "with -matrix: run the reduced CI smoke matrix")
	cells := flag.String("cells", "", "with -matrix: comma-separated substrings selecting cells")
	out := flag.String("out", "BENCH_scenarios.json", "with -matrix: report path ('-' prints only)")
	timing := flag.Bool("timing", false, "with -matrix: include wall-clock timing blocks (nondeterministic)")
	check := flag.Bool("check", true, "with -matrix: fail if any cell misses its reliability target")
	flag.Parse()

	var err error
	if *matrix {
		err = runMatrix(os.Stdout, matrixOpts{
			short:  *short,
			cells:  *cells,
			out:    *out,
			seed:   *seed,
			timing: *timing,
			check:  *check,
		})
	} else {
		err = run(os.Stdout, *fig, *assignments, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sladesim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig string, assignments int, seed int64) error {
	if assignments < 1 {
		return fmt.Errorf("assignments must be positive")
	}
	figs := map[string]func() experiments.Figure{
		"3a": func() experiments.Figure { return experiments.Fig3(experiments.Jelly, assignments, seed) },
		"3b": func() experiments.Figure { return experiments.Fig3(experiments.SMIC, assignments, seed) },
		"3c": func() experiments.Figure { return experiments.Fig3c(assignments, seed) },
	}
	order := []string{"3a", "3b", "3c"}
	matched := false
	for _, id := range order {
		if fig != "all" && fig != id {
			continue
		}
		matched = true
		printFig(w, figs[id]())
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (have %s, all)", fig, strings.Join(order, ", "))
	}
	return nil
}

// printFig renders a Figure-3 style table: one row per cardinality, one
// column per series, '*' marking mostly-overtime points and '-' marking
// points with no in-time answers at all.
func printFig(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "Figure %s — %s (* = >50%% overtime)\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%14s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-12.0f", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			p := s.Points[i]
			switch {
			case math.IsNaN(p.Y):
				fmt.Fprintf(w, "%14s", "-")
			case p.Overtime > 0.5:
				fmt.Fprintf(w, "%13.3f*", p.Y)
			default:
				fmt.Fprintf(w, "%14.3f", p.Y)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
