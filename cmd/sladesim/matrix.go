package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/scenario"
)

// matrixOpts carries the -matrix mode flags.
type matrixOpts struct {
	short  bool   // run the reduced CI smoke matrix
	cells  string // comma-separated substrings selecting cells
	out    string // report path; "" or "-" prints only
	seed   int64
	timing bool // include wall-clock timing blocks
	check  bool // fail on cells below their reliability target
}

// runMatrix executes the scenario lab: pick the matrix, filter it, run
// every cell through the real service pipeline, write the machine-readable
// report, and print the human frontier table.
func runMatrix(w io.Writer, opts matrixOpts) error {
	m := scenario.DefaultMatrix(opts.seed)
	if opts.short {
		m = scenario.ShortMatrix(opts.seed)
	}
	if opts.cells != "" {
		m = m.Filter(strings.Split(opts.cells, ","))
		if len(m.Cells) == 0 {
			return fmt.Errorf("-cells %q matched no cell of matrix %q", opts.cells, m.Name)
		}
	}
	rep, err := scenario.Run(m, scenario.Options{
		Timing: opts.timing,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if opts.out != "" && opts.out != "-" {
		if err := os.WriteFile(opts.out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d cells)\n", opts.out, len(rep.Cells))
	}
	fmt.Fprint(w, rep.FrontierTable())
	if opts.check {
		errs := rep.CheckTargets()
		for _, e := range errs {
			fmt.Fprintln(w, "FAIL:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d of %d cells below their reliability target", len(errs), len(rep.Cells))
		}
	}
	return nil
}
