package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig3a(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "3a", 20, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3a") {
		t.Errorf("missing figure header:\n%s", out)
	}
	for _, tier := range []string{"cost=0.05", "cost=0.08", "cost=0.10"} {
		if !strings.Contains(out, tier) {
			t.Errorf("missing pay tier %s", tier)
		}
	}
	// The cheap tier must show overtime markers or dashes at the deep end.
	if !strings.Contains(out, "*") && !strings.Contains(out, "-") {
		t.Error("expected overtime markers in Fig 3a output")
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "all", 5, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"3a", "3b", "3c"} {
		if !strings.Contains(out, "Figure "+id) {
			t.Errorf("missing figure %s", id)
		}
	}
	if !strings.Contains(out, "Diff. 3") {
		t.Error("missing difficulty series in 3c")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, "3z", 10, 1)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	// The error must teach the valid values, not just reject.
	for _, want := range []string{"3z", "3a", "3b", "3c", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-figure error should mention %q: %v", want, err)
		}
	}
	if err := run(&sb, "3a", 0, 1); err == nil {
		t.Error("zero assignments accepted")
	}
}

// TestRunMatrixShortSmoke drives the -matrix -short path end to end: the
// reduced matrix runs through the real pipeline, the report lands on disk,
// every cell passes its reliability target, and the frontier table prints.
func TestRunMatrixShortSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scenarios.json")
	var sb strings.Builder
	if err := runMatrix(&sb, matrixOpts{short: true, out: out, seed: 1, check: true}); err != nil {
		t.Fatalf("matrix run failed: %v\n%s", err, sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema_version"`, `"matrix": "short"`, `"reliability"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %s", want)
		}
	}
	if !strings.Contains(sb.String(), "Scenario frontier") {
		t.Errorf("frontier table missing:\n%s", sb.String())
	}
}

func TestRunMatrixFilterAndErrors(t *testing.T) {
	var sb strings.Builder
	err := runMatrix(&sb, matrixOpts{short: true, cells: "no-such-cell", out: "-", seed: 1})
	if err == nil || !strings.Contains(err.Error(), "no-such-cell") {
		t.Fatalf("empty filter must error with the filter string, got %v", err)
	}
	sb.Reset()
	if err := runMatrix(&sb, matrixOpts{short: true, cells: "uniform/heterogeneous", out: "-", seed: 1, check: true}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "jelly12"); got != 4 { // 2 cells: 1 log line + 1 table row each
		t.Errorf("filter kept the wrong cells (%d jelly12 mentions):\n%s", got, sb.String())
	}
}
