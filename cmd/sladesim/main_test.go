package main

import (
	"strings"
	"testing"
)

func TestRunFig3a(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "3a", 20, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3a") {
		t.Errorf("missing figure header:\n%s", out)
	}
	for _, tier := range []string{"cost=0.05", "cost=0.08", "cost=0.10"} {
		if !strings.Contains(out, tier) {
			t.Errorf("missing pay tier %s", tier)
		}
	}
	// The cheap tier must show overtime markers or dashes at the deep end.
	if !strings.Contains(out, "*") && !strings.Contains(out, "-") {
		t.Error("expected overtime markers in Fig 3a output")
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "all", 5, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"3a", "3b", "3c"} {
		if !strings.Contains(out, "Figure "+id) {
			t.Errorf("missing figure %s", id)
		}
	}
	if !strings.Contains(out, "Diff. 3") {
		t.Error("missing difficulty series in 3c")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "3z", 10, 1); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(&sb, "3a", 0, 1); err == nil {
		t.Error("zero assignments accepted")
	}
}
